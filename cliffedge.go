// Package cliffedge is a library for cliff-edge consensus — the convergent
// detection of crashed regions in networks of arbitrary size, after
// Taïani, Porter, Coulson & Raynal, "Cliff-Edge Consensus: Agreeing on the
// Precipice" (PaCT 2013).
//
// When a whole region of a large distributed system fails at once (a rack,
// a data centre, a partitioned overlay neighbourhood), the surviving nodes
// around the hole — the nodes on the "cliff edge" — must agree on the
// exact extent of the crashed region and on a common recovery action,
// involving only themselves: the protocol's cost depends on the size of
// the failure, never on the size of the system.
//
// # Quick start
//
//	topo := cliffedge.Grid(8, 8)
//	victims := cliffedge.CenterBlock(8, 8, 2)
//	res, err := cliffedge.RunChecked(
//		cliffedge.Config{Topology: topo, Seed: 1},
//		cliffedge.CrashAll(victims, 10),
//	)
//	// res.Decisions: every border node of the 2×2 block decided the same
//	// (region, repair-plan) pair.
//
// Run executes a deterministic discrete-event simulation (same seed, same
// run, bit for bit). RunLive executes the same protocol with one goroutine
// per node on the Go scheduler. RunChecked additionally verifies the seven
// properties CD1–CD7 from the paper over the finished trace and fails if
// any is violated.
package cliffedge

import (
	"fmt"
	"io"
	"time"

	"cliffedge/internal/check"
	"cliffedge/internal/core"
	"cliffedge/internal/graph"
	"cliffedge/internal/livenet"
	"cliffedge/internal/proto"
	"cliffedge/internal/region"
	"cliffedge/internal/sim"
	"cliffedge/internal/trace"
)

// NodeID identifies a process; IDs order lexicographically.
type NodeID = graph.NodeID

// Topology is the immutable knowledge graph G = (Π, E): an edge means the
// two nodes know each other and monitor each other's liveness.
type Topology = graph.Graph

// TopologyBuilder accumulates nodes and undirected edges.
type TopologyBuilder = graph.Builder

// Region is a canonical set of nodes with its border; decided views are
// regions.
type Region = region.Region

// Value is a decision value (e.g. a repair-plan identifier).
type Value = proto.Value

// Event is one trace entry of a run.
type Event = trace.Event

// Event kinds, for Trigger predicates and trace inspection.
const (
	EventCrash   = trace.KindCrash
	EventDetect  = trace.KindDetect
	EventSend    = trace.KindSend
	EventDeliver = trace.KindDeliver
	EventDrop    = trace.KindDrop
	EventPropose = trace.KindPropose
	EventReject  = trace.KindReject
	EventReset   = trace.KindReset
	EventDecide  = trace.KindDecide
)

// Stats aggregates a run's trace.
type Stats = trace.Stats

// NewTopology returns an empty topology builder.
func NewTopology() *TopologyBuilder { return graph.NewBuilder() }

// Topology generators, re-exported from the graph substrate. All are
// deterministic given their parameters (and seed where randomised).
var (
	// Grid builds a rows×cols 4-neighbour mesh.
	Grid = graph.Grid
	// Torus builds a wraparound mesh.
	Torus = graph.Torus
	// Ring builds an n-cycle.
	Ring = graph.Ring
	// Line builds an n-node path.
	Line = graph.Line
	// Star builds a hub-and-leaves topology.
	Star = graph.Star
	// Tree builds a complete k-ary tree.
	Tree = graph.Tree
	// Complete builds K_n.
	Complete = graph.Complete
	// Chord builds a ring with power-of-two fingers (DHT-like).
	Chord = graph.Chord
	// ErdosRenyi builds G(n, p) plus a connectivity cycle.
	ErdosRenyi = graph.ErdosRenyi
	// SmallWorld builds a Watts–Strogatz small world.
	SmallWorld = graph.SmallWorld
	// RandomGeometric builds a unit-square proximity graph.
	RandomGeometric = graph.RandomGeometric
	// Clustered builds dense blobs joined by bridges.
	Clustered = graph.Clustered
	// BarabasiAlbert builds a scale-free preferential-attachment graph.
	BarabasiAlbert = graph.BarabasiAlbert
	// Hypercube builds the d-dimensional hypercube.
	Hypercube = graph.Hypercube
	// GridID names the node at (row, col) of a generated grid.
	GridID = graph.GridID
	// RingID names the i-th node of ring-like generators.
	RingID = graph.RingID
	// CenterBlock lists the k×k block centred in a rows×cols grid.
	CenterBlock = graph.CenterBlock
	// GridBlock lists the k×k block anchored at (r0, c0).
	GridBlock = graph.GridBlock
	// Fig1 builds the paper's Fig. 1 world graph (returns graph, F1, F2).
	Fig1 = graph.Fig1
	// Fig2 builds the paper's Fig. 2 faulty-domain cluster.
	Fig2 = graph.Fig2
)

// NewRegion builds a Region over t from the given nodes.
func NewRegion(t *Topology, nodes []NodeID) Region { return region.New(t, nodes) }

// LatencyRange is a uniform latency band in virtual time ticks.
type LatencyRange struct{ Min, Max int64 }

// Config parameterises a cluster run.
type Config struct {
	// Topology is required.
	Topology *Topology
	// Seed drives all randomised latencies; same seed, same run.
	Seed int64
	// NetLatency is the message-delay band; default [1, 10].
	NetLatency LatencyRange
	// DetectLatency is the failure-detection delay band; default [1, 10].
	DetectLatency LatencyRange
	// Propose maps a view the node is about to propose to its suggested
	// decision value (the paper's selectValueForView); default derives a
	// deterministic repair-plan label from the view.
	Propose func(Region) Value
	// Pick deterministically selects the decision from the accepted
	// values (the paper's deterministicPick); default: lexicographic
	// minimum. Must be a pure function of the value multiset.
	Pick func([]Value) Value
	// Triggers optionally schedule event-conditioned crashes (simulator
	// runs only).
	Triggers []Trigger
}

// Crash schedules Node to fail at virtual time Time.
type Crash struct {
	Time int64
	Node NodeID
}

// Trigger schedules a crash of Node `Delay` ticks after the first trace
// event matching When — e.g. "crash paris right after madrid's first
// proposal", the paper's Fig. 1(b) scenario. Triggers fire at most once.
type Trigger struct {
	Node  NodeID
	When  func(Event) bool
	Delay int64
}

// CrashAll schedules all nodes to fail at time t (a correlated region
// failure).
func CrashAll(nodes []NodeID, t int64) []Crash {
	out := make([]Crash, len(nodes))
	for i, n := range nodes {
		out[i] = Crash{Time: t, Node: n}
	}
	return out
}

// Decision is one node's protocol outcome: the agreed crashed region and
// the common decision value.
type Decision struct {
	Node  NodeID
	View  Region
	Value Value
}

// Result is a finished run.
type Result struct {
	// Decisions lists every correct node's decision, sorted by node.
	Decisions []Decision
	// Stats aggregates message, byte, round and timing counters.
	Stats Stats
	// Crashed is the set of nodes that failed during the run.
	Crashed map[NodeID]bool

	events []Event
}

// Events returns the full trace of the run in order.
func (r *Result) Events() []Event { return r.events }

// Narrative writes the trace in a human-readable line-per-event form.
func (r *Result) Narrative(w io.Writer) error {
	for _, e := range r.events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// DecisionByNode returns the decision taken by n, or nil.
func (r *Result) DecisionByNode(n NodeID) *Decision {
	for i := range r.Decisions {
		if r.Decisions[i].Node == n {
			return &r.Decisions[i]
		}
	}
	return nil
}

func (c Config) factory() proto.Factory {
	t := c.Topology
	propose := c.Propose
	pick := c.Pick
	return func(id NodeID) proto.Automaton {
		return core.New(core.Config{ID: id, Graph: t, Propose: propose, Pick: pick})
	}
}

func (c Config) netModel() sim.LatencyModel {
	if c.NetLatency == (LatencyRange{}) {
		return sim.Uniform{Min: 1, Max: 10}
	}
	return sim.Uniform{Min: c.NetLatency.Min, Max: c.NetLatency.Max}
}

func (c Config) fdModel() sim.LatencyModel {
	if c.DetectLatency == (LatencyRange{}) {
		return sim.Uniform{Min: 1, Max: 10}
	}
	return sim.Uniform{Min: c.DetectLatency.Min, Max: c.DetectLatency.Max}
}

// Run executes the scenario on the deterministic simulator until
// quiescence.
func Run(cfg Config, crashes []Crash) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("cliffedge: Config.Topology is required")
	}
	simCrashes := make([]sim.CrashAt, len(crashes))
	for i, c := range crashes {
		simCrashes[i] = sim.CrashAt{Time: c.Time, Node: c.Node}
	}
	simTriggers := make([]sim.Trigger, len(cfg.Triggers))
	for i, t := range cfg.Triggers {
		simTriggers[i] = sim.Trigger{Node: t.Node, When: t.When, Delay: t.Delay}
	}
	runner, err := sim.NewRunner(sim.Config{
		Graph:      cfg.Topology,
		Factory:    cfg.factory(),
		Seed:       cfg.Seed,
		NetLatency: cfg.netModel(),
		FDLatency:  cfg.fdModel(),
		Crashes:    simCrashes,
		Triggers:   simTriggers,
	})
	if err != nil {
		return nil, err
	}
	res, err := runner.Run()
	if err != nil {
		return nil, err
	}
	out := &Result{Stats: res.Stats, Crashed: res.Crashed, events: res.Events}
	for _, d := range res.SortedDecisions() {
		out.Decisions = append(out.Decisions,
			Decision{Node: d.Node, View: d.Decision.View, Value: d.Decision.Value})
	}
	return out, nil
}

// RunChecked is Run plus verification: the seven properties CD1–CD7 of
// convergent detection of crashed regions are checked over the finished
// trace, and any violation is returned as an error.
func RunChecked(cfg Config, crashes []Crash) (*Result, error) {
	res, err := Run(cfg, crashes)
	if err != nil {
		return nil, err
	}
	rep := check.Run(cfg.Topology, res.events)
	if !rep.Ok() {
		return res, fmt.Errorf("cliffedge: property violations:\n%s", rep)
	}
	return res, nil
}

// RunLive executes the protocol with one goroutine per node. Crash waves
// are injected in order, each after the cluster went quiescent; timeout
// bounds each quiescence wait. Outcomes are scheduler-dependent but always
// satisfy CD1–CD7 (use the race detector in tests).
func RunLive(cfg Config, waves [][]NodeID, timeout time.Duration) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("cliffedge: Config.Topology is required")
	}
	res, err := livenet.Run(cfg.Topology, cfg.factory(), waves, timeout)
	if err != nil {
		return nil, err
	}
	out := &Result{Stats: res.Stats, Crashed: res.Crashed, events: res.Events}
	ids := make([]NodeID, 0, len(res.Decisions))
	for id := range res.Decisions {
		ids = append(ids, id)
	}
	graph.SortIDs(ids)
	for _, id := range ids {
		d := res.Decisions[id]
		out.Decisions = append(out.Decisions,
			Decision{Node: id, View: d.View, Value: d.Value})
	}
	return out, nil
}

// DOT renders the topology in Graphviz format, shading the given crashed
// nodes.
func DOT(t *Topology, crashed []NodeID, name string) string {
	return t.DOT(name, graph.ToSet(crashed))
}
