package cliffedge

import (
	"fmt"

	"cliffedge/internal/netem"
)

// NetModel declares the network conditions of a run: a mode, a default
// link profile and an ordered rule list. Attach one to a Cluster with
// [WithNetModel]; Plans add dynamic clauses on top with [Plan.FlapLink]
// and [Plan.Degrade]. See the internal/netem package documentation for
// the full semantics; the short version:
//
//   - NetRetransmit (default) keeps the paper's reliable-FIFO channel
//     abstraction intact — losses, spikes and link flaps surface as
//     extra delivery delay only (a link layer doing bounded resends).
//     Every property CD1–CD7 remains checkable.
//   - NetRawLoss really drops (and occasionally duplicates) messages,
//     deliberately breaking the proof assumptions so campaigns can
//     quantify stall and decision rates. A checked Cluster automatically
//     downgrades to the safety-only property subset for such runs.
//
// Verdicts are pure functions of (cluster seed, sender, recipient, send
// time): simulator runs stay bit-for-bit reproducible with a model
// attached, and the live runtime adjudicates locklessly from any number
// of goroutines.
type NetModel = netem.Model

// NetProfile composes per-link condition primitives: loss probability,
// jitter band, heavy-tail spikes, duplication.
type NetProfile = netem.Profile

// NetRule scopes a NetProfile (and optionally a NetFlap) to a set of
// links during an active time window.
type NetRule = netem.Rule

// NetFlap is a scheduled link outage with heal times — one-shot or
// periodic.
type NetFlap = netem.Flap

// NetStats are the link-layer counters of one run: transmissions,
// deliveries, drops, retransmissions, duplicates and total imposed delay.
type NetStats = netem.Stats

// NetMode selects how a NetModel treats the transmissions it disturbs:
// NetRetransmit or NetRawLoss.
type NetMode = netem.Mode

// Network-model modes.
const (
	// NetRetransmit converts losses and outages into bounded extra delay;
	// delivery stays exactly-once FIFO.
	NetRetransmit = netem.Retransmit
	// NetRawLoss drops and duplicates messages for real.
	NetRawLoss = netem.RawLoss
)

// WithNetModel attaches a network-condition model to every run of the
// cluster. The model is bound per run against the topology and the
// cluster seed; Plan.FlapLink/Plan.Degrade clauses are prepended to its
// rule list at run time. Binding errors (malformed profiles or flap
// schedules, unknown nodes) surface from Cluster.Run.
func WithNetModel(m *NetModel) Option {
	return func(c *Cluster) error {
		if m == nil {
			return fmt.Errorf("cliffedge: nil NetModel")
		}
		c.netModel = m
		return nil
	}
}

// bindNet composes the cluster's network model with the plan's netem
// clauses and binds the result to the topology and seed. Plan clauses are
// prepended — a flap or degradation scheduled by the plan takes
// precedence over the model's static rules — and a nil result means the
// run is unconditioned (the engines skip adjudication entirely).
func (c *Cluster) bindNet(plan *Plan) (*netem.Net, error) {
	var rules []netem.Rule
	if plan != nil {
		rules = plan.netemRules()
	}
	if c.netModel == nil && len(rules) == 0 {
		return nil, nil
	}
	var m NetModel
	if c.netModel != nil {
		m = *c.netModel
	}
	if len(rules) > 0 {
		m.Rules = append(rules, m.Rules...)
	}
	return m.Bind(c.topo, c.seed)
}
