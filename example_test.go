package cliffedge_test

import (
	"fmt"
	"log"

	"cliffedge"
)

// ExampleRunChecked reproduces the library's core promise on a 5×5 mesh:
// crash one interior node and its four neighbours — only they — agree on
// the region and a common plan. Deterministic given the seed.
func ExampleRunChecked() {
	topo := cliffedge.Grid(5, 5)
	victim := cliffedge.GridID(2, 2)

	res, err := cliffedge.RunChecked(
		cliffedge.Config{Topology: topo, Seed: 1},
		[]cliffedge.Crash{{Time: 10, Node: victim}},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range res.Decisions {
		fmt.Printf("%s decided %s\n", d.Node, d.View)
	}
	fmt.Printf("participants: %d of %d correct nodes\n",
		res.Stats.Participants, topo.Len()-1)

	// Output:
	// n0001-0002 decided {n0002-0002}
	// n0002-0001 decided {n0002-0002}
	// n0002-0003 decided {n0002-0002}
	// n0003-0002 decided {n0002-0002}
	// participants: 4 of 24 correct nodes
}

// ExampleRunPredicate shows the §5 stable-predicate extension: two marked
// (alive but withdrawn) nodes are detected cooperatively, no failure
// detector involved.
func ExampleRunPredicate() {
	topo := cliffedge.Line(5) // r0 - r1 - r2 - r3 - r4
	marked := []cliffedge.NodeID{cliffedge.RingID(2), cliffedge.RingID(3)}

	res, err := cliffedge.RunPredicate(
		cliffedge.Config{Topology: topo, Seed: 1},
		cliffedge.MarkAll(marked, 10),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range res.Decisions {
		fmt.Printf("%s decided %s\n", d.Node, d.View)
	}

	// Output:
	// r000001 decided {r000002,r000003}
	// r000004 decided {r000002,r000003}
}
