package cliffedge

import (
	"fmt"
	"sort"

	"cliffedge/internal/netem"
	"cliffedge/internal/predicate"
	"cliffedge/internal/sim"
)

// Plan describes everything that happens to a cluster during a run: timed
// crashes, event-conditioned triggers and stable-predicate marks, composed
// through one builder. It replaces the []Crash / []Trigger / [][]NodeID /
// []Mark quartet the legacy entry points took.
//
//	plan := cliffedge.NewPlan().
//		At(10).Crash(victims...).
//		OnEvent(func(e cliffedge.Event) bool {
//			return e.Kind == cliffedge.EventPropose && e.Node == "madrid"
//		}, 1).Crash("paris")
//
// At and OnEvent position a cursor — the moment subsequent Crash and Mark
// calls attach to — so several faults can share one cursor. The zero
// cursor is virtual time 0. Plans are pure data: build once, run on any
// engine (the live engine orders timed steps into quiescence-separated
// waves and does not support OnEvent).
type Plan struct {
	steps []planStep
	// netSteps are the plan's network-condition clauses (FlapLink,
	// Degrade), lowered into netem rules and prepended to the cluster's
	// NetModel at run time.
	netSteps []netem.Rule
	// netOnEvent records a netem clause attached under an OnEvent cursor,
	// which has no time window to compile into; validate rejects it.
	netOnEvent bool

	// Cursor state for the builder.
	at    int64
	when  func(Event) bool
	delay int64
}

type planStep struct {
	at    int64            // virtual time of a timed step (when == nil)
	when  func(Event) bool // condition of a triggered step
	delay int64            // ticks after the condition first matches
	mark  bool             // mark instead of crash
	nodes []NodeID
}

// NewPlan returns an empty fault plan with the cursor at virtual time 0.
func NewPlan() *Plan { return &Plan{} }

// At moves the cursor to virtual time t, clearing any OnEvent condition.
func (p *Plan) At(t int64) *Plan {
	p.at, p.when, p.delay = t, nil, 0
	return p
}

// OnEvent moves the cursor to "delay ticks after the first trace event
// matching when". Conditioned steps fire at most once each and are
// supported by the simulator engine only.
func (p *Plan) OnEvent(when func(Event) bool, delay int64) *Plan {
	p.when, p.delay = when, delay
	return p
}

// Crash schedules nodes to fail at the cursor.
func (p *Plan) Crash(nodes ...NodeID) *Plan { return p.add(false, nodes) }

// Mark schedules nodes' stable predicate to start holding at the cursor
// (the paper's §5 extension: marked nodes stay alive but withdraw from
// coordination, and detection is cooperative). A plan containing marks
// runs every node as a predicate automaton and cannot be combined with
// WithChecker, whose properties are specified against crash ground truth.
func (p *Plan) Mark(nodes ...NodeID) *Plan { return p.add(true, nodes) }

// FlapLink schedules an outage of the link between a and b (both
// directions): the link goes down at the cursor time and heals `down`
// ticks later. While down, transmissions on the link are dropped in
// raw-loss mode and delayed past the heal time in retransmission mode.
// FlapLink requires a timed (At) cursor.
func (p *Plan) FlapLink(a, b NodeID, down int64) *Plan {
	if p.when != nil {
		p.netOnEvent = true
		return p
	}
	p.netSteps = append(p.netSteps, netem.Rule{
		A:    []NodeID{a},
		B:    []NodeID{b},
		Flap: &netem.Flap{Start: p.at, Down: down},
	})
	return p
}

// Degrade applies prof to every link touching one of the given nodes
// (the zone-degradation clause), from the cursor time to the end of the
// run. With no nodes the whole network degrades. Plan clauses take
// precedence over the rules of the cluster's WithNetModel model; among
// themselves, earlier clauses win. Degrade requires a timed (At) cursor.
func (p *Plan) Degrade(prof NetProfile, nodes ...NodeID) *Plan {
	if p.when != nil {
		p.netOnEvent = true
		return p
	}
	p.netSteps = append(p.netSteps, netem.Rule{
		A:       append([]NodeID(nil), nodes...),
		Profile: prof,
		From:    p.at,
	})
	return p
}

// netemRules returns the plan's compiled network-condition clauses.
func (p *Plan) netemRules() []netem.Rule {
	if len(p.netSteps) == 0 {
		return nil
	}
	return append([]netem.Rule(nil), p.netSteps...)
}

func (p *Plan) add(mark bool, nodes []NodeID) *Plan {
	if len(nodes) == 0 {
		return p
	}
	p.steps = append(p.steps, planStep{
		at: p.at, when: p.when, delay: p.delay, mark: mark,
		nodes: append([]NodeID(nil), nodes...),
	})
	return p
}

// hasMarks reports whether any step marks nodes, which switches the whole
// cluster to the predicate automaton.
func (p *Plan) hasMarks() bool {
	for _, s := range p.steps {
		if s.mark {
			return true
		}
	}
	return false
}

// validate checks every referenced node against the topology and rejects
// netem clauses attached under an OnEvent cursor (they compile into time
// windows, which an event condition does not provide).
func (p *Plan) validate(t *Topology) error {
	if p.netOnEvent {
		return fmt.Errorf("cliffedge: FlapLink/Degrade require a timed At cursor, not OnEvent")
	}
	for _, s := range p.steps {
		for _, n := range s.nodes {
			if !t.Has(n) {
				return fmt.Errorf("cliffedge: plan references unknown node %q", n)
			}
		}
	}
	for _, r := range p.netSteps {
		for _, n := range append(append([]NodeID(nil), r.A...), r.B...) {
			if !t.Has(n) {
				return fmt.Errorf("cliffedge: plan network clause references unknown node %q", n)
			}
		}
	}
	return nil
}

// compileSim lowers the plan onto the simulator's schedule types,
// preserving step insertion order (which fixes kernel sequence numbers and
// hence the bit-exact trace).
func (p *Plan) compileSim() (crashes []sim.CrashAt, triggers []sim.Trigger, injections []sim.InjectAt) {
	for _, s := range p.steps {
		for _, n := range s.nodes {
			switch {
			case s.when == nil && !s.mark:
				crashes = append(crashes, sim.CrashAt{Time: s.at, Node: n})
			case s.when == nil:
				injections = append(injections, sim.InjectAt{Time: s.at, Node: n, Payload: predicate.Mark{}})
			case !s.mark:
				triggers = append(triggers, sim.Trigger{Node: n, When: s.when, Delay: s.delay})
			default:
				triggers = append(triggers, sim.Trigger{Node: n, When: s.when, Delay: s.delay, Payload: predicate.Mark{}})
			}
		}
	}
	return crashes, triggers, injections
}

// liveWave is one quiescence-separated injection round of the live engine.
type liveWave struct {
	crash []NodeID
	mark  []NodeID
}

// liveWaves groups the plan's timed steps by cursor time, ascending, into
// waves the live engine injects between quiescence barriers. Conditioned
// (OnEvent) steps have no live counterpart and are rejected.
func (p *Plan) liveWaves() ([]liveWave, error) {
	byTime := make(map[int64]*liveWave)
	var times []int64
	for _, s := range p.steps {
		if s.when != nil {
			return nil, fmt.Errorf("cliffedge: the live engine does not support OnEvent steps")
		}
		w := byTime[s.at]
		if w == nil {
			w = &liveWave{}
			byTime[s.at] = w
			times = append(times, s.at)
		}
		if s.mark {
			w.mark = append(w.mark, s.nodes...)
		} else {
			w.crash = append(w.crash, s.nodes...)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]liveWave, len(times))
	for i, t := range times {
		out[i] = *byTime[t]
	}
	return out, nil
}
