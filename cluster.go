package cliffedge

import (
	"context"
	"fmt"
	"io"
	"time"

	"cliffedge/internal/check"
	"cliffedge/internal/core"
	"cliffedge/internal/predicate"
	"cliffedge/internal/proto"
	"cliffedge/internal/trace"
)

// Observer receives every trace event of a run as it happens, in sequence
// order. Observers are the streaming half of the API: paired with
// WithoutTraceBuffer they let arbitrarily large runs execute in memory
// bounded by the topology, not the trace. An observer runs on the engine's
// hot path (under the log lock in the live engine): keep it fast and never
// start another run from inside one.
type Observer func(Event)

// Cluster is an immutable description of a system under test: a topology
// plus protocol parameters, engine and instrumentation. Build one with
// New; execute fault Plans against it with Run. A Cluster holds no run
// state, so the same value can execute any number of plans, sequentially
// or concurrently.
type Cluster struct {
	topo        *Topology
	seed        int64
	net, fd     LatencyRange
	propose     func(Region) Value
	pick        func([]Value) Value
	checked     bool
	observers   []Observer
	noBuffer    bool
	engine      Engine
	liveTimeout time.Duration
	liveTick    time.Duration
	maxEvents   int
	kernShards  int
	netModel    *NetModel
	traceW      io.Writer
}

// Option configures a Cluster at construction time.
type Option func(*Cluster) error

// New builds a Cluster over topo. Defaults: seed 0, both latency bands
// uniform in [1, 10], the deterministic simulator engine, trace buffering
// on, property checking off.
func New(topo *Topology, opts ...Option) (*Cluster, error) {
	if topo == nil {
		return nil, fmt.Errorf("cliffedge: topology is required")
	}
	c := &Cluster{
		topo:        topo,
		net:         LatencyRange{Min: 1, Max: 10},
		fd:          LatencyRange{Min: 1, Max: 10},
		liveTimeout: 30 * time.Second,
		kernShards:  1,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("cliffedge: nil Option")
		}
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if c.engine == nil {
		c.engine = Sim()
	}
	return c, nil
}

// Run executes plan on the cluster's engine. A nil plan is the empty plan:
// the cluster simply runs to quiescence. Cancelling ctx (or exceeding its
// deadline) aborts the run with the context's error.
func (c *Cluster) Run(ctx context.Context, plan *Plan) (*Result, error) {
	if plan == nil {
		plan = NewPlan()
	}
	if c.checked && plan.hasMarks() {
		// The CD1–CD7 checker judges decided views against crash ground
		// truth reconstructed from the trace; marked nodes emit no crash
		// events (they stay alive and keep gossiping), so every clean
		// predicate run would be reported as a violation.
		return nil, fmt.Errorf("cliffedge: WithChecker supports crash plans only; remove the checker to run Mark steps")
	}
	return c.engine.Run(ctx, c, plan)
}

// WithSeed sets the seed driving all randomised latencies; same seed, same
// simulator run, bit for bit.
func WithSeed(seed int64) Option {
	return func(c *Cluster) error { c.seed = seed; return nil }
}

// WithNetLatency sets the message-delay band [min, max] in virtual ticks.
func WithNetLatency(min, max int64) Option {
	return func(c *Cluster) error {
		if min < 1 || max < min {
			return fmt.Errorf("cliffedge: invalid net latency band [%d, %d]", min, max)
		}
		c.net = LatencyRange{Min: min, Max: max}
		return nil
	}
}

// WithDetectLatency sets the failure-detection delay band [min, max].
func WithDetectLatency(min, max int64) Option {
	return func(c *Cluster) error {
		if min < 1 || max < min {
			return fmt.Errorf("cliffedge: invalid detect latency band [%d, %d]", min, max)
		}
		c.fd = LatencyRange{Min: min, Max: max}
		return nil
	}
}

// WithPropose sets the view→value proposal function (the paper's
// selectValueForView). The default derives a deterministic repair-plan
// label from the view.
func WithPropose(fn func(Region) Value) Option {
	return func(c *Cluster) error { c.propose = fn; return nil }
}

// WithPick sets the deterministic choice among accepted values (the
// paper's deterministicPick); it must be a pure function of the value
// multiset. The default is the lexicographic minimum.
func WithPick(fn func([]Value) Value) Option {
	return func(c *Cluster) error { c.pick = fn; return nil }
}

// WithChecker verifies the seven properties CD1–CD7 online, as the run's
// events stream by, and makes Run return an error describing every
// violation. The checker's memory is bounded by the topology and the
// decision count, so it composes with WithoutTraceBuffer. The properties
// are specified against crash ground truth, so a checked Run rejects
// plans containing Mark steps. When the run's network model is raw-loss
// (genuinely unreliable channels), the checker automatically judges only
// the safety subset CD1–CD3/CD5/CD6 — stalls and duplicated deliveries
// are the *point* of that mode, not violations.
func WithChecker() Option {
	return func(c *Cluster) error { c.checked = true; return nil }
}

// WithObserver streams every trace event of a run to fn as it happens.
// Repeating the option registers multiple observers; they run in
// registration order.
func WithObserver(fn Observer) Option {
	return func(c *Cluster) error {
		if fn == nil {
			return fmt.Errorf("cliffedge: nil Observer")
		}
		c.observers = append(c.observers, fn)
		return nil
	}
}

// WithoutTraceBuffer stops the run from retaining its event trace:
// Result.Events returns nil while Stats, observers and the online checker
// still see everything. This is how million-node runs stay in constant
// memory.
func WithoutTraceBuffer() Option {
	return func(c *Cluster) error { c.noBuffer = true; return nil }
}

// WithTraceWriter streams every event of the run to w in the binary trace
// format (see the trace package; convert with cliffedge-trace). This is
// the default on-disk sink: paired with WithoutTraceBuffer the full trace
// lands on disk while the run itself stays in constant memory. The stream
// is flushed when the run finishes; a write error fails the run. Events
// from the simulator arrive in sequence order; the live engine writes in
// per-node batch order, with the Time field providing the global total
// order (sort by Time to reconstruct it). The writer is owned by the run:
// do not share one writer between concurrent runs.
func WithTraceWriter(w io.Writer) Option {
	return func(c *Cluster) error {
		if w == nil {
			return fmt.Errorf("cliffedge: nil trace writer")
		}
		c.traceW = w
		return nil
	}
}

// WithEngine selects the execution backend; the default is Sim().
func WithEngine(e Engine) Option {
	return func(c *Cluster) error {
		if e == nil {
			return fmt.Errorf("cliffedge: nil Engine")
		}
		c.engine = e
		return nil
	}
}

// WithLiveTimeout bounds each quiescence wait of the live engine (default
// 30s). The simulator ignores it — bound simulator runs through ctx.
func WithLiveTimeout(d time.Duration) Option {
	return func(c *Cluster) error {
		if d <= 0 {
			return fmt.Errorf("cliffedge: non-positive live timeout %v", d)
		}
		c.liveTimeout = d
		return nil
	}
}

// WithLiveTick makes the live engine realise the network model's extra
// delays in wall time: a delivery the model delayed by d ticks sleeps
// d × tick in the receiving node's loop, in queue order, so per-link FIFO
// is preserved and the run's wall-clock timing takes the netem shape —
// jitter bands, retransmission backoff and outage heal waits become
// observable pauses instead of counters. The default (no tick) leaves
// timing entirely to the Go scheduler; the simulator, whose virtual clock
// already carries the delays, ignores the option. Only meaningful together
// with WithNetModel.
func WithLiveTick(tick time.Duration) Option {
	return func(c *Cluster) error {
		if tick <= 0 {
			return fmt.Errorf("cliffedge: non-positive live tick %v", tick)
		}
		c.liveTick = tick
		return nil
	}
}

// WithKernelShards sets the simulator kernel's intra-run parallelism: the
// event queue is partitioned into n sub-queues executed under a
// conservative time-window barrier whose lookahead is the minimum channel
// latency. The trace — and therefore every Result field, checker verdict
// and golden hash — is byte-identical at any shard count and any
// GOMAXPROCS; only wall-clock time changes. n = 1 (the default) is the
// classic sequential kernel; n = 0 picks shards automatically, one per
// connected crashed-region domain group (the paper's locality property:
// disjoint region closures generate causally independent event streams);
// n ≥ 2 stripes nodes over exactly n shards. Plans with OnEvent steps
// run sequentially regardless (their predicates inspect the globally
// ordered trace as it forms). The live engine ignores the option.
func WithKernelShards(n int) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("cliffedge: negative kernel shard count %d", n)
		}
		c.kernShards = n
		return nil
	}
}

// WithMaxEvents caps the simulator's kernel event budget (default 50
// million), turning livelocks into errors instead of hangs.
func WithMaxEvents(n int) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("cliffedge: negative event budget %d", n)
		}
		c.maxEvents = n
		return nil
	}
}

// factory instantiates the per-node automaton: the core crash protocol, or
// its predicate-detection wrapper when the plan marks nodes.
func (c *Cluster) factory(marks bool) proto.Factory {
	topo, propose, pick := c.topo, c.propose, c.pick
	if marks {
		return func(id NodeID) proto.Automaton {
			return predicate.New(core.Config{ID: id, Graph: topo, Propose: propose, Pick: pick})
		}
	}
	return func(id NodeID) proto.Automaton {
		return core.New(core.Config{ID: id, Graph: topo, Propose: propose, Pick: pick})
	}
}

// instrument assembles the run's streaming sink: the online CD1–CD7
// checker (when enabled) followed by the user observers, all fed in
// sequence order. Both results are nil when nothing listens.
func (c *Cluster) instrument() (*check.Online, func(trace.Event)) {
	var online *check.Online
	if c.checked {
		online = check.NewOnline(c.topo)
	}
	if online == nil && len(c.observers) == 0 {
		return nil, nil
	}
	observers := c.observers
	return online, func(e trace.Event) {
		if online != nil {
			online.Observe(e)
		}
		for _, fn := range observers {
			fn(e)
		}
	}
}

// finish applies the online checker's verdict to a completed run. On
// violation the result is still returned alongside the error, so callers
// can inspect what went wrong. With safetyOnly (the run used a raw-loss
// network model, which legitimately stalls and duplicates) only the
// safety subset CD1–CD3/CD5/CD6 is judged.
func finish(res *Result, online *check.Online, safetyOnly bool) (*Result, error) {
	if online == nil {
		return res, nil
	}
	var rep check.Report
	if safetyOnly {
		rep = online.SafetyReport()
	} else {
		rep = online.Report()
	}
	if !rep.Ok() {
		return res, fmt.Errorf("cliffedge: property violations:\n%s", rep)
	}
	return res, nil
}
