// Command cliffedge-campaign runs a statistical sweep over many protocol
// runs: a grid of (topology family × fault regime × engine) cells, each
// over a seed range, executed across a worker pool. It prints a per-cell
// summary table (latency percentiles, message/byte costs, violation and
// cross-run agreement rates) plus the fitted locality slope — the paper's
// headline claim, messages ∝ crashed-region border rather than system
// size, checked as a regression over every run.
//
//	cliffedge-campaign -seeds 32 -repeats 3 -engines sim,live
//	cliffedge-campaign -topos grid,er -regimes quiescent,midprotocol -seeds 8 -fail
//	cliffedge-campaign -regimes flaky -seeds 24 -fail         # degraded net, full checker
//	cliffedge-campaign -regimes lossy -seeds 24               # raw loss: stall/decision rates
//	cliffedge-campaign -seeds 64 -json report.json -csv report.csv
//
// With -store the sweep is persistent: every completed run is appended to
// a durable log, and a sweep interrupted by ^C or a crash is picked up
// where it left off with -resume — the merged report is byte-identical to
// an uninterrupted run, because each run is a pure function of its seed.
// The same store directory can be served over HTTP by cliffedged.
//
//	cliffedge-campaign -store ./data -seeds 512               # durable sweep, prints its ID
//	cliffedge-campaign -store ./data -resume c000001          # continue after an interruption
//
// With -merge the command runs no campaign at all: the arguments are
// campaign directories (each holding manifest.json + results.log — shard
// stores fetched from fleet workers, or local -store sweeps), whose specs
// must tile one campaign's seed range. Their record logs merge through
// the same dedup-and-order path the fleet coordinator uses, so the output
// is byte-identical to a single box running the whole spec; mismatched
// specs (different grid axes, or seed ranges with gaps) are refused.
//
//	cliffedge-campaign -merge ./w1/c000001 ./w2/c000001 -json report.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"cliffedge"
	"cliffedge/internal/fleet"
	"cliffedge/internal/gen"
	"cliffedge/internal/obs"
	"cliffedge/internal/serve"
	"cliffedge/internal/store"
)

// logger is the process-wide structured log, configured by -log-level
// and -log-format before anything else runs.
var logger *slog.Logger

func main() {
	var (
		topos     = flag.String("topos", "all", "comma-separated topology families ("+strings.Join(gen.FamilyNames(), ", ")+") or all")
		regimes   = flag.String("regimes", "all", "comma-separated fault regimes ("+strings.Join(gen.RegimeNames(), ", ")+") or all")
		engines   = flag.String("engines", "sim", "comma-separated engines (sim, live)")
		seeds     = flag.Int("seeds", 16, "seeds per cell (each seed is one workload)")
		seed0     = flag.Int64("seed-start", 1, "first seed of the range")
		repeats   = flag.Int("repeats", 1, "attempts per workload (repeats > 1 measure cross-run agreement)")
		workers   = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "overall campaign deadline (0 = none)")
		jsonOut   = flag.String("json", "", "write the JSON report to this file (- for stdout)")
		csvOut    = flag.String("csv", "", "write the per-cell CSV to this file (- for stdout)")
		quiet     = flag.Bool("quiet", false, "suppress the text summary")
		fail      = flag.Bool("fail", false, "exit non-zero on any run error, property violation or zero-decision cell")
		storeDir  = flag.String("store", "", "persist the sweep under this directory (resumable; shared with cliffedged)")
		resume    = flag.String("resume", "", "resume the persisted campaign with this ID (requires -store; grid flags are ignored — the stored spec wins)")
		traces    = flag.String("traces", "", "stream every run's full binary trace into this directory, one file per job (created if absent; convert with cliffedge-trace)")
		merge     = flag.Bool("merge", false, "merge the argument campaign directories (shards of one campaign) into a single report instead of running anything")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()

	var err error
	if logger, err = obs.NewLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "cliffedge-campaign:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	if *merge {
		runMerge(flag.Args(), *jsonOut, *csvOut, *quiet, *fail)
		return
	}

	split := func(s string, all []string) []string {
		if s == "all" {
			return all
		}
		return strings.Split(s, ",")
	}
	opts := []cliffedge.CampaignOption{
		cliffedge.WithTopologies(split(*topos, gen.FamilyNames())...),
		cliffedge.WithRegimes(split(*regimes, gen.RegimeNames())...),
		cliffedge.WithCampaignEngines(strings.Split(*engines, ",")...),
		cliffedge.WithSeedRange(*seed0, *seeds),
		cliffedge.WithRepeats(*repeats),
	}
	if *workers > 0 {
		opts = append(opts, cliffedge.WithWorkers(*workers))
	}
	var extra []cliffedge.CampaignOption
	if *traces != "" {
		if err := os.MkdirAll(*traces, 0o755); err != nil {
			fatal(err)
		}
		extra = append(extra, cliffedge.WithTraceDir(*traces))
	}
	camp, err := cliffedge.NewCampaign(append(opts, extra...)...)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	var rep *cliffedge.CampaignReport
	var runErr error
	if *storeDir != "" {
		rep, runErr = runPersistent(ctx, *storeDir, *resume, camp, *workers, extra)
	} else {
		if *resume != "" {
			fatal(errors.New("-resume requires -store"))
		}
		rep, runErr = camp.Run(ctx)
	}
	elapsed := time.Since(start)
	if rep == nil {
		fatal(runErr)
	}

	if !*quiet {
		if err := rep.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("elapsed: %s (%.1f runs/s)\n", elapsed.Round(time.Millisecond),
			float64(rep.Totals.Runs)/elapsed.Seconds())
	}
	if err := emit(*jsonOut, rep.WriteJSON); err != nil {
		fatal(err)
	}
	if err := emit(*csvOut, rep.WriteCSV); err != nil {
		fatal(err)
	}
	if runErr != nil {
		fatal(fmt.Errorf("campaign aborted: %w", runErr))
	}
	if err := rep.Err(); err != nil {
		if *fail {
			fatal(err)
		}
		logger.Warn("report carries failures", "err", err)
	}
}

// runPersistent executes the campaign as a durable sweep in dir: a fresh
// sweep under a newly allocated ID, or — with resumeID — the remainder of
// an interrupted one. Both paths go through the same serve.Sweep the HTTP
// server uses, so every completed run is committed to the store's result
// log before the next begins and an interruption costs nothing but the
// in-flight runs.
func runPersistent(ctx context.Context, dir, resumeID string, camp *cliffedge.Campaign, workers int, extra []cliffedge.CampaignOption) (*cliffedge.CampaignReport, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	var sw *serve.Sweep
	if resumeID != "" {
		m, err := st.Manifest(resumeID)
		if err != nil {
			return nil, err
		}
		if m.Status != store.StatusRunning {
			return nil, fmt.Errorf("campaign %s is %s, not resumable", resumeID, m.Status)
		}
		if sw, err = serve.Open(st, resumeID, extra...); err != nil {
			return nil, err
		}
		logger.Info("resuming persistent sweep", "campaign", resumeID,
			"completed", sw.Completed(), "total", sw.Total())
	} else {
		id, err := serve.AllocateID(st)
		if err != nil {
			return nil, err
		}
		if sw, err = serve.Create(st, id, "cli", time.Now().UTC(), camp.Spec(), extra...); err != nil {
			return nil, err
		}
		logger.Info("persistent sweep created", "campaign", id, "runs", sw.Total(), "store", dir)
	}
	defer sw.Close()
	rep, err := sw.Run(ctx, workers)
	if err != nil && ctx.Err() != nil {
		logger.Warn("interrupted; resume with -store/-resume", "campaign", sw.ID,
			"completed", sw.Completed(), "total", sw.Total(), "store", dir)
	}
	return rep, err
}

// runMerge is the -merge main: fold N campaign directories — shards of
// one campaign, run anywhere — into the single-box report. The heavy
// lifting (spec union, deterministic order, dedup, coverage check) is
// fleet.MergeDirs, the exact path the coordinator merges with, so offline
// merges inherit its byte-identity guarantee.
func runMerge(dirs []string, jsonOut, csvOut string, quiet, failOn bool) {
	if len(dirs) == 0 {
		fatal(errors.New("-merge needs campaign directories as arguments (each with manifest.json and results.log)"))
	}
	rep, spec, err := fleet.MergeDirs(dirs)
	if err != nil {
		fatal(err)
	}
	logger.Info("merged shard stores", "stores", len(dirs),
		"seed_start", spec.SeedStart, "seed_end", spec.SeedStart+int64(spec.Seeds)-1)
	if !quiet {
		if err := rep.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if err := emit(jsonOut, rep.WriteJSON); err != nil {
		fatal(err)
	}
	if err := emit(csvOut, rep.WriteCSV); err != nil {
		fatal(err)
	}
	if err := rep.Err(); err != nil {
		if failOn {
			fatal(err)
		}
		logger.Warn("report carries failures", "err", err)
	}
}

// emit writes through fn to path ("" = skip, "-" = stdout).
func emit(path string, fn func(io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	if logger != nil {
		logger.Error("fatal", "err", err)
	} else {
		fmt.Fprintln(os.Stderr, "cliffedge-campaign:", err)
	}
	os.Exit(1)
}
