// bench-guard maintains the kernel bench trajectory in BENCH_kernel.json:
// it merges a fresh `cliffedge-bench -exp KERNEL -json` measurement into
// the history array and fails (exit 1) when the new point regresses
// ns_per_op by more than -max-ratio against the last recorded entry.
//
// CI runs it on release tags:
//
//	go run ./cmd/cliffedge-bench -exp KERNEL -json > point.json
//	go run ./cmd/bench-guard -history BENCH_kernel.json -point point.json \
//	    -label "$TAG" -rev "$SHA" -out BENCH_kernel.json
//
// On regression the history is NOT extended — appending the slow point
// would make it the next baseline and a committed-back artifact would
// silently ratchet the gate past a standing regression. The offending
// measurement is still printed so the CI log carries it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cliffedge/internal/benchjson"
)

// historyFile mirrors BENCH_kernel.json; fields bench-guard does not
// interpret round-trip as raw JSON.
type historyFile struct {
	Benchmark      string                  `json:"benchmark"`
	Workload       json.RawMessage         `json:"workload"`
	HowToReproduce json.RawMessage         `json:"how_to_reproduce"`
	History        []benchjson.KernelPoint `json:"history"`
	Notes          string                  `json:"notes"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-guard: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	historyPath := flag.String("history", "BENCH_kernel.json", "bench trajectory file")
	pointPath := flag.String("point", "", "fresh measurement (cliffedge-bench -exp KERNEL -json output)")
	label := flag.String("label", "", "override the new point's label (e.g. the release tag)")
	rev := flag.String("rev", "", "override the new point's rev (e.g. the commit SHA)")
	maxRatio := flag.Float64("max-ratio", 1.5, "fail when new ns_per_op exceeds last recorded × ratio")
	out := flag.String("out", "", "write the appended history here (empty: don't write)")
	flag.Parse()
	if *pointPath == "" {
		fatalf("-point is required")
	}

	raw, err := os.ReadFile(*historyPath)
	if err != nil {
		fatalf("%v", err)
	}
	var hist historyFile
	if err := json.Unmarshal(raw, &hist); err != nil {
		fatalf("parse %s: %v", *historyPath, err)
	}
	if len(hist.History) == 0 {
		fatalf("%s has no history to compare against", *historyPath)
	}

	rawPoint, err := os.ReadFile(*pointPath)
	if err != nil {
		fatalf("%v", err)
	}
	var p benchjson.KernelPoint
	if err := json.Unmarshal(rawPoint, &p); err != nil {
		fatalf("parse %s: %v", *pointPath, err)
	}
	if p.NsPerOp <= 0 {
		fatalf("new point has non-positive ns_per_op %d", p.NsPerOp)
	}
	if *label != "" {
		p.Label = *label
	}
	if *rev != "" {
		p.Rev = *rev
	}

	base := hist.History[len(hist.History)-1]
	ratio := float64(p.NsPerOp) / float64(base.NsPerOp)
	fmt.Printf("last:  %s (%s): %v\n", base.Label, base.Rev, time.Duration(base.NsPerOp))
	fmt.Printf("new:   %s (%s): %v\n", p.Label, p.Rev, time.Duration(p.NsPerOp))
	fmt.Printf("ratio: %.3f (gate %.2f)\n", ratio, *maxRatio)

	if ratio > *maxRatio {
		// Do not extend the history: a committed-back artifact carrying
		// the slow point would become the next baseline and silently
		// ratchet the gate past the regression.
		rejected, _ := json.Marshal(&p)
		fmt.Fprintf(os.Stderr, "bench-guard: REGRESSION: %.3f > %.2f×; point not appended: %s\n",
			ratio, *maxRatio, rejected)
		os.Exit(1)
	}

	hist.History = append(hist.History, p)
	if *out != "" {
		buf, err := json.MarshalIndent(&hist, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("appended point to %s\n", *out)
	}
	fmt.Println("ok: within the regression gate")
}
