package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cliffedge/internal/benchjson"
	"cliffedge/internal/scenario"
	"cliffedge/internal/sim"
)

// kernelPoint is one entry of the BENCH_kernel.json history array. The
// -exp KERNEL -json output is exactly this shape, so updating the
// trajectory is copy-paste plus filling in label/rev (or letting
// bench-guard do it, which reads the same shared struct).
type kernelPoint = benchjson.KernelPoint

// kernelBench runs the headline kernel workload — the 64×64 grid cascade
// of BenchmarkKernelCascade64, trace discarded — `runs` times and reports
// the fastest wall time (allocation counts are deterministic across
// runs). Peak RSS is the process high-water mark (VmHWM), so run KERNEL
// on its own, not after other experiments. shards follows the public
// convention (1 = sequential, 0 = auto, N ≥ 2 = stripe); the workload's
// results are byte-identical at any setting, only the wall time moves.
func kernelBench(runs int, seed int64, shards int, asJSON bool, tracePath string) {
	spec := scenario.CascadeSpec(64, 64, 16, 8, 25, seed)
	kshards := shards
	if kshards == 0 {
		kshards = sim.AutoShards
	}
	p := kernelPoint{Label: "local run", Rev: "working tree", Shards: shards}
	for i := 0; i < runs; i++ {
		r, err := sim.NewRunner(sim.Config{
			Graph:         spec.Graph,
			Factory:       scenario.CoreFactory(spec.Graph),
			Seed:          spec.Seed,
			Crashes:       spec.Crashes,
			Shards:        kshards,
			DiscardEvents: true,
		})
		if err != nil {
			fatal(err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := r.Run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			fatal(err)
		}
		// Keep every field from the fastest run, so the emitted point is a
		// measurement of one actual run rather than a min/last mixture.
		if p.NsPerOp == 0 || elapsed.Nanoseconds() < p.NsPerOp {
			p.NsPerOp = elapsed.Nanoseconds()
			p.AllocsPerOp = after.Mallocs - before.Mallocs
			p.BytesPerOp = after.TotalAlloc - before.TotalAlloc
			p.MsgsPerOp = res.Stats.Messages
			p.Decisions = res.Stats.Decisions
			p.EndTime = res.EndTime
		}
	}
	p.PeakRSSKB = peakRSSKB()
	if tracePath != "" {
		if err := captureKernelTrace(spec, tracePath); err != nil {
			fatal(err)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p); err != nil {
			fatal(err)
		}
		return
	}
	if shards == 1 {
		fmt.Println("## KERNEL — 64×64 grid cascade, streaming posture (see BENCH_kernel.json)")
	} else {
		fmt.Printf("## KERNEL — 64×64 grid cascade, streaming posture, shards=%d (see BENCH_kernel.json)\n", shards)
	}
	fmt.Println()
	fmt.Println("| time/op | allocs/op | bytes/op | peak RSS kB | msgs | decisions | t_end |")
	fmt.Println("|--------:|----------:|---------:|------------:|-----:|----------:|------:|")
	fmt.Printf("| %s | %d | %d | %d | %d | %d | %d |\n\n",
		time.Duration(p.NsPerOp), p.AllocsPerOp, p.BytesPerOp, p.PeakRSSKB,
		p.MsgsPerOp, p.Decisions, p.EndTime)
}

// peakRSSKB reads the process's resident-set high-water mark from
// /proc/self/status (VmHWM). Returns 0 where procfs is unavailable
// (non-Linux); the JSON field then reads as unmeasured.
func peakRSSKB() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}
