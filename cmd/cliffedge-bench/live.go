package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cliffedge/internal/benchjson"
	"cliffedge/internal/graph"
	"cliffedge/internal/livenet"
	"cliffedge/internal/scenario"
	"cliffedge/internal/sim"
	"cliffedge/internal/trace"
)

// liveWorkload is the BenchmarkLiveCascade32 workload: the 32×32 grid
// cascade (8×8 centre block, then four racing single-node crashes) with
// the spec's timed crashes grouped into waves replayed without idle
// barriers in between.
func liveWorkload(seed int64) (spec scenario.Spec, waves [][]graph.NodeID) {
	spec = scenario.CascadeSpec(32, 32, 8, 4, 25, seed)
	var times []int64
	for _, c := range spec.Crashes {
		if len(times) == 0 || c.Time != times[len(times)-1] {
			times = append(times, c.Time)
			waves = append(waves, nil)
		}
		waves[len(waves)-1] = append(waves[len(waves)-1], c.Node)
	}
	return spec, waves
}

// liveBench runs the headline live workload — the 32×32 cascade of
// BenchmarkLiveCascade32, trace discarded — `runs` times and reports the
// fastest wall time. Unlike the deterministic kernel, allocation counts
// vary slightly run to run (the Go scheduler decides the interleaving),
// so the point keeps the counts of the fastest run. The -exp LIVE -json
// output is one BENCH_live.json history entry, gated by bench-guard like
// the kernel's.
func liveBench(runs int, seed int64, asJSON bool, tracePath string) {
	spec, waves := liveWorkload(seed)
	p := benchjson.KernelPoint{Label: "local run", Rev: "working tree"}
	for i := 0; i < runs; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		rt := livenet.NewRuntime(spec.Graph, scenario.CoreFactory(spec.Graph),
			livenet.Options{DiscardEvents: true})
		if err := rt.WaitIdle(time.Minute); err != nil {
			rt.Stop()
			fatal(err)
		}
		for _, w := range waves {
			rt.CrashAll(w...)
		}
		if err := rt.WaitIdle(time.Minute); err != nil {
			rt.Stop()
			fatal(err)
		}
		rt.Stop()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		res := rt.Result()
		if p.NsPerOp == 0 || elapsed.Nanoseconds() < p.NsPerOp {
			p.NsPerOp = elapsed.Nanoseconds()
			p.AllocsPerOp = after.Mallocs - before.Mallocs
			p.BytesPerOp = after.TotalAlloc - before.TotalAlloc
			p.MsgsPerOp = res.Stats.Messages
			p.Decisions = res.Stats.Decisions
			p.EndTime = res.Stats.EndTime
		}
	}
	p.PeakRSSKB = peakRSSKB()
	if tracePath != "" {
		if err := captureLiveTrace(spec, waves, tracePath); err != nil {
			fatal(err)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println("## LIVE — 32×32 live cascade, streaming posture (see BENCH_live.json)")
	fmt.Println()
	fmt.Println("| time/op | allocs/op | bytes/op | peak RSS kB | msgs | decisions | t_end |")
	fmt.Println("|--------:|----------:|---------:|------------:|-----:|----------:|------:|")
	fmt.Printf("| %s | %d | %d | %d | %d | %d | %d |\n\n",
		time.Duration(p.NsPerOp), p.AllocsPerOp, p.BytesPerOp, p.PeakRSSKB,
		p.MsgsPerOp, p.Decisions, p.EndTime)
}

// captureLiveTrace replays the live workload once more with the binary
// sink attached and writes the full trace to path. The capture run is
// separate from the timed runs so the measurement stays sink-free.
func captureLiveTrace(spec scenario.Spec, waves [][]graph.NodeID, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	rt := livenet.NewRuntime(spec.Graph, scenario.CoreFactory(spec.Graph),
		livenet.Options{DiscardEvents: true, TraceWriter: bw})
	if err := rt.WaitIdle(time.Minute); err != nil {
		rt.Stop()
		f.Close()
		return err
	}
	for _, w := range waves {
		rt.CrashAll(w...)
	}
	if err := rt.WaitIdle(time.Minute); err != nil {
		rt.Stop()
		f.Close()
		return err
	}
	rt.Stop()
	if err := rt.TraceErr(); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cliffedge-bench: binary trace written to %s\n", path)
	return nil
}

// captureKernelTrace replays the kernel workload once more with the
// binary sink riding the simulator's observer stream and writes the full
// trace to path, again outside the timed runs.
func captureKernelTrace(spec scenario.Spec, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	buf := bufio.NewWriter(f)
	bw := trace.NewBinaryWriter(buf)
	r, err := sim.NewRunner(sim.Config{
		Graph:         spec.Graph,
		Factory:       scenario.CoreFactory(spec.Graph),
		Seed:          spec.Seed,
		Crashes:       spec.Crashes,
		DiscardEvents: true,
		Observer:      func(e trace.Event) { bw.Write(e) },
	})
	if err != nil {
		f.Close()
		return err
	}
	if _, err := r.Run(); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := buf.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cliffedge-bench: binary trace written to %s\n", path)
	return nil
}
