package main

import (
	"context"
	"fmt"
	"runtime"

	"cliffedge"
)

// streamBench contrasts the two memory postures of the Cluster API on a
// grid that loses its central quarter: a buffered run retaining the full
// event trace, and a streaming run (WithoutTraceBuffer + observer + online
// checker) whose memory stays bounded by the topology. Both must reach the
// same decisions.
func streamBench(full bool, seed int64) {
	sides := []int{32, 48, 64}
	if full {
		sides = append(sides, 96, 128)
	}
	fmt.Println("## STREAM — Buffered trace vs streaming observers (WithoutTraceBuffer)")
	fmt.Println()
	fmt.Println("| grid | crashed | events | retained (buffered) | retained (stream) | heap MB (buffered) | heap MB (stream) | decisions equal |")
	fmt.Println("|------|--------:|-------:|--------------------:|------------------:|-------------------:|-----------------:|----------------:|")
	for _, s := range sides {
		topo := cliffedge.Grid(s, s)
		victims := cliffedge.CenterBlock(s, s, s/2)
		plan := cliffedge.NewPlan().At(10).Crash(victims...)

		buffered, err := cliffedge.New(topo, cliffedge.WithSeed(seed))
		if err != nil {
			fatal(err)
		}
		resB, err := buffered.Run(context.Background(), plan)
		if err != nil {
			fatal(err)
		}
		heapB := heapAfterGC() // resB (and its trace) still alive
		decisionsB := resB.Decisions
		retainedB := len(resB.Events())
		resB = nil // release the buffered trace before measuring the streaming run
		_ = resB

		var streamed int
		streaming, err := cliffedge.New(topo,
			cliffedge.WithSeed(seed),
			cliffedge.WithChecker(),
			cliffedge.WithoutTraceBuffer(),
			cliffedge.WithObserver(func(cliffedge.Event) { streamed++ }),
		)
		if err != nil {
			fatal(err)
		}
		resS, err := streaming.Run(context.Background(), plan)
		if err != nil {
			fatal(err)
		}
		heapS := heapAfterGC()

		equal := len(decisionsB) == len(resS.Decisions)
		for i := 0; equal && i < len(decisionsB); i++ {
			equal = decisionsB[i].Node == resS.Decisions[i].Node &&
				decisionsB[i].Value == resS.Decisions[i].Value &&
				decisionsB[i].View.Equal(resS.Decisions[i].View)
		}
		fmt.Printf("| %d×%d | %d | %d | %d | %d | %.1f | %.1f | %v |\n",
			s, s, len(victims), streamed, retainedB, len(resS.Events()),
			float64(heapB)/(1<<20), float64(heapS)/(1<<20), equal)
	}
	fmt.Println()
}

func heapAfterGC() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
