// Command cliffedge-bench regenerates every table and figure experiment of
// EXPERIMENTS.md (ids match DESIGN.md §3): the paper-figure scenarios
// (F1a, F1b, F2, F3), the claim tables (T1 locality, T2 region cost, T3
// latency, T4 arbitration ablation, T5 cascades, T6 stable-predicate
// extension, T7 round-count ablation) and the exhaustive model-checking
// suite (MC). Output is Markdown, suitable for pasting into EXPERIMENTS.md.
//
//	cliffedge-bench -exp all
//	cliffedge-bench -exp T1 -full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cliffedge/internal/scenario"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: all, F1a, F1b, F2, F3, T1..T7, MC, STREAM, KERNEL, LIVE (STREAM, KERNEL and LIVE run only when named)")
		full    = flag.Bool("full", false, "run the large variants (T1 up to N=102400 and a bigger global baseline)")
		seed    = flag.Int64("seed", 1, "base seed")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON metrics instead of Markdown (KERNEL, LIVE)")
		kenruns = flag.Int("kernel-runs", 3, "repetitions of the KERNEL/LIVE workload (fastest wall time wins)")
		shards  = flag.Int("shards", 1, "KERNEL kernel shards: 1 = sequential, 0 = auto, N ≥ 2 = stripe over N (results identical, wall time varies)")
		trcOut  = flag.String("trace", "", "also write the workload's full binary trace to this file via one extra untimed run (KERNEL, LIVE)")
	)
	flag.Parse()

	run := func(id string) bool {
		return *exp == "all" || strings.EqualFold(*exp, id)
	}
	ran := false
	if run("F1a") {
		ran = true
		f1a(*seed)
	}
	if run("F1b") {
		ran = true
		f1b()
	}
	if run("F2") {
		ran = true
		f2(*seed)
	}
	if run("F3") {
		ran = true
		f3()
	}
	if run("T1") {
		ran = true
		t1(*full, *seed)
	}
	if run("T2") {
		ran = true
		t2(*seed)
	}
	if run("T3") {
		ran = true
		t3(*seed)
	}
	if run("T4") {
		ran = true
		t4(*seed)
	}
	if run("T5") {
		ran = true
		t5(*seed)
	}
	if run("T6") {
		ran = true
		t6(*seed)
	}
	if run("T7") {
		ran = true
		t7(*seed)
	}
	if run("MC") {
		ran = true
		mcTable()
	}
	// STREAM, KERNEL and LIVE are not part of -exp all: STREAM is a
	// multi-minute memory-posture contrast, and the kernel and live points
	// are recorded deliberately, when updating BENCH_kernel.json and
	// BENCH_live.json.
	if strings.EqualFold(*exp, "STREAM") {
		ran = true
		streamBench(*full, *seed)
	}
	if strings.EqualFold(*exp, "KERNEL") {
		ran = true
		kernelBench(*kenruns, *seed, *shards, *asJSON, *trcOut)
	}
	if strings.EqualFold(*exp, "LIVE") {
		ran = true
		liveBench(*kenruns, *seed, *asJSON, *trcOut)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "cliffedge-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cliffedge-bench:", err)
	os.Exit(1)
}

func f1a(seed int64) {
	res, err := scenario.ExperimentF1a(seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## F1a — Fig. 1(a): two independent local agreements")
	fmt.Println()
	fmt.Printf("- deciders on F1 (Europe): %v\n", res.DecidersF1)
	fmt.Printf("- deciders on F2 (Pacific): %v\n", res.DecidersF2)
	fmt.Printf("- cross-hemisphere messages: %d (locality demands 0)\n", res.CrossHemisphere)
	fmt.Printf("- messages=%d bytes=%d participants=%d decided@t=%d\n",
		res.Stats.Messages, res.Stats.Bytes, res.Stats.Participants, res.Stats.DecideTime)
	fmt.Printf("- property check: %s\n\n", res.Report)
}

func f1b() {
	res, err := scenario.ExperimentF1b(100)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## F1b — Fig. 1(b): paris crashes mid-agreement, views converge")
	fmt.Println()
	fmt.Println("| seeds | converged on F3 | early unanimous F1 | rejections | property violations |")
	fmt.Println("|------:|----------------:|-------------------:|-----------:|--------------------:|")
	fmt.Printf("| %d | %d | %d | %d | %d |\n\n",
		res.Seeds, res.ConvergedF3, res.EarlyF1, res.Rejections, res.Violations)
}

func f2(seed int64) {
	res, err := scenario.ExperimentF2(seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## F2 — Fig. 2: cluster of four adjacent faulty domains")
	fmt.Println()
	fmt.Printf("- decided views: %v\n", res.DecidedViews)
	fmt.Printf("- clusters=%d, cluster decided=%v (CD7)\n", res.Clusters, res.DecidedCluster)
	fmt.Printf("- messages=%d rejections=%d resets=%d\n",
		res.Stats.Messages, res.Stats.Rejections, res.Stats.Resets)
	fmt.Printf("- property check: %s\n\n", res.Report)
}

func f3() {
	res, err := scenario.ExperimentF3(50)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## F3 — Fig. 3 / Thm 3: randomized overlapping-view stress")
	fmt.Println()
	fmt.Println("| seeds | decisions | overlapping decided pairs | CD violations |")
	fmt.Println("|------:|----------:|--------------------------:|--------------:|")
	fmt.Printf("| %d | %d | %d | %d |\n\n", res.Seeds, res.Decisions, res.Overlaps, res.Violations)
}

func t1(full bool, seed int64) {
	sides := []int{10, 20, 40, 80, 160}
	globalMax := 900
	if full {
		sides = append(sides, 320)
		globalMax = 1600
	}
	rows, err := scenario.ExperimentT1(sides, globalMax, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## T1 — Locality: fixed 3×3 crashed block, growing system")
	fmt.Println()
	fmt.Println("| N | cliff msgs | cliff bytes | cliff participants | cliff t_decide | global msgs | global bytes | global participants | global t_decide |")
	fmt.Println("|--:|-----------:|------------:|-------------------:|---------------:|------------:|-------------:|--------------------:|----------------:|")
	for _, r := range rows {
		g := func(v int) string {
			if r.GlobalSkipped {
				return "—"
			}
			return fmt.Sprint(v)
		}
		gt := "—"
		if !r.GlobalSkipped {
			gt = fmt.Sprint(r.GlobalDecideTime)
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %s | %s | %s | %s |\n",
			r.N, r.CliffMsgs, r.CliffBytes, r.CliffParticipants, r.CliffDecideTime,
			g(r.GlobalMsgs), g(r.GlobalBytes), g(r.GlobalParticipants), gt)
	}
	fmt.Println()
}

func t2(seed int64) {
	rows, err := scenario.ExperimentT2(24, []int{1, 2, 3, 4, 5, 6, 7, 8}, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## T2 — Cost vs crashed-region size (24×24 grid, k×k block)")
	fmt.Println()
	fmt.Println("| k | region | border b | msgs | bytes | max round | t_decide | decisions |")
	fmt.Println("|--:|-------:|---------:|-----:|------:|----------:|---------:|----------:|")
	for _, r := range rows {
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %d | %d |\n",
			r.K, r.RegionSize, r.Border, r.Msgs, r.Bytes, r.MaxRound, r.DecideTime, r.Decisions)
	}
	fmt.Println()
}

func t3(seed int64) {
	rows, err := scenario.ExperimentT3([]int64{2, 10, 50, 250}, []int64{2, 10, 50, 250}, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## T3 — Decision latency vs network and detector latency (12×12 grid, 3×3 block)")
	fmt.Println()
	fmt.Println("| net latency ≤ | fd latency ≤ | t_decide | msgs | resets |")
	fmt.Println("|--------------:|-------------:|---------:|-----:|-------:|")
	for _, r := range rows {
		fmt.Printf("| %d | %d | %d | %d | %d |\n", r.NetMax, r.FDMax, r.DecideTime, r.Msgs, r.Resets)
	}
	fmt.Println()
}

func t4(seed int64) {
	rows, err := scenario.ExperimentT4(25, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## T4 — Arbitration ablation (ranking/reject mechanism on vs off)")
	fmt.Println()
	fmt.Println("| workload | arbitration | runs | clusters decided | decisions | safety violations |")
	fmt.Println("|----------|------------:|-----:|-----------------:|----------:|------------------:|")
	for _, r := range rows {
		fmt.Printf("| %s | %v | %d | %d/%d | %d | %d |\n",
			r.Scenario, r.Arbitration, r.Runs, r.ClustersDecided, r.ClustersTotal,
			r.Decisions, r.SafetyViolations)
	}
	fmt.Println()
}

func t5(seed int64) {
	rows, err := scenario.ExperimentT5([]int{0, 1, 2, 3, 4, 5, 6, 7, 8}, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## T5 — Cascades: region keeps growing during agreement (9×9 grid)")
	fmt.Println()
	fmt.Println("| cascade depth | msgs | proposals | resets | rejections | decisions | t_decide |")
	fmt.Println("|--------------:|-----:|----------:|-------:|-----------:|----------:|---------:|")
	for _, r := range rows {
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %d |\n",
			r.Depth, r.Msgs, r.Proposals, r.Resets, r.Rejections, r.Decisions, r.DecideTime)
	}
	fmt.Println()
}

func t6(seed int64) {
	rows, err := scenario.ExperimentT6(24, []int{1, 2, 3, 4, 5, 6}, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## T6 — Stable-predicate extension (§5): marked regions, cooperative detection")
	fmt.Println()
	fmt.Println("| k | region | border | msgs (total) | announce msgs | decisions | t_decide |")
	fmt.Println("|--:|-------:|-------:|-------------:|--------------:|----------:|---------:|")
	for _, r := range rows {
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %d |\n",
			r.K, r.RegionSize, r.Border, r.Msgs, r.AnnounceMsg, r.Decisions, r.DecideTime)
	}
	fmt.Println()
}

func t7(seed int64) {
	rows, err := scenario.ExperimentT7(200, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println("## T7 — Round-count ablation: corrected |B| rounds vs Algorithm 1's literal |B|−1")
	fmt.Println()
	fmt.Println("| mode | runs | CD5 (uniformity) violations | decisions | avg final round |")
	fmt.Println("|------|-----:|----------------------------:|----------:|----------------:|")
	for _, r := range rows {
		fmt.Printf("| %s | %d | %d | %d | %.1f |\n",
			r.Mode, r.Runs, r.CD5Violations, r.Decisions, r.AvgRounds)
	}
	fmt.Println()
}

func mcTable() {
	rows, err := scenario.ExperimentMC()
	if err != nil {
		fatal(err)
	}
	fmt.Println("## MC — Bounded model checking: all interleavings of small scenarios")
	fmt.Println()
	fmt.Println("| scenario | rounds mode | states | terminal runs | truncated | violations | decided views |")
	fmt.Println("|----------|-------------|-------:|--------------:|-----------|-----------:|--------------:|")
	for _, r := range rows {
		mode := "corrected |B|"
		if r.Literal {
			mode = "literal |B|−1"
		}
		fmt.Printf("| %s | %s | %d | %d | %v | %d | %d |\n",
			r.Scenario, mode, r.States, r.Runs, r.Truncated, r.Violations, r.DecidedViews)
	}
	fmt.Println()
}
