// Command cliffedge-sim runs one cliff-edge consensus scenario and reports
// what happened: the decisions, the cost counters, and (optionally) the
// full event narrative, a Graphviz rendering, and the CD1–CD7 property
// report.
//
// Examples:
//
//	cliffedge-sim -topo grid:12,12 -crash block:3
//	cliffedge-sim -topo fig1 -crash fig1 -narrate
//	cliffedge-sim -topo ring:32 -crash nodes:r000007,r000008,r000009
//	cliffedge-sim -topo er:60,0.06 -crash random:2,8 -seed 7
//	cliffedge-sim -topo grid:8,8 -crash block:2 -live
//	cliffedge-sim -topo grid:256,256 -crash block:3 -stream -timeout 2m
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"cliffedge"
	"cliffedge/internal/check"
	"cliffedge/internal/graph"
	"cliffedge/internal/scenario"
	"cliffedge/internal/trace"
	"cliffedge/internal/viz"
)

// gridDims parses "grid:R,C" / "torus:R,C" specs for the ASCII map.
func gridDims(spec string) (rows, cols int, ok bool) {
	name, args, _ := strings.Cut(spec, ":")
	if name != "grid" && name != "torus" {
		return 0, 0, false
	}
	parts := strings.Split(args, ",")
	if len(parts) != 2 {
		return 0, 0, false
	}
	r, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	c, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return r, c, true
}

func main() {
	var (
		topoSpec  = flag.String("topo", "grid:8,8", "topology: grid:R,C torus:R,C ring:N line:N star:N tree:N,K complete:N chord:N er:N,P sw:N,K,B geo:N,R clustered:C,S,B,P fig1 fig2")
		crashSpec = flag.String("crash", "block:2", "failure: block:K nodes:a,b,c random:COUNT,MAXSIZE fig1 fig2")
		at        = flag.Int64("t", 10, "crash time (virtual ticks)")
		stagger   = flag.Int64("stagger", 0, "gap between successive crashes (0 = simultaneous)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		narrate   = flag.Bool("narrate", false, "print the full event trace")
		dot       = flag.Bool("dot", false, "print the topology in Graphviz DOT and exit")
		noCheck   = flag.Bool("nocheck", false, "skip the CD1–CD7 property verification")
		live      = flag.Bool("live", false, "run on the goroutine runtime instead of the deterministic simulator")
		gridMap   = flag.Bool("grid", false, "render an ASCII map of the outcome (grid topologies)")
		timeline  = flag.Bool("timeline", false, "render an activity timeline of the run")
		flows     = flag.Int("flows", 0, "show the N most talkative nodes")
		jsonOut   = flag.String("json", "", "write the trace as JSON Lines to this file")
		traceOut  = flag.String("trace", "", "write the trace in the binary format to this file (streams during the run, so it composes with -stream)")
		stream    = flag.Bool("stream", false, "print events as they happen and keep no trace in memory (constant-memory runs)")
		shards    = flag.Int("shards", 1, "simulator kernel shards: 1 = sequential, 0 = auto (one per crashed-region domain group), N ≥ 2 = stripe over N; the trace is byte-identical at any setting")
		timeout   = flag.Duration("timeout", 0, "wall-clock bound for the whole run (0 = none)")
	)
	flag.Parse()

	// Reject flag conflicts before any work: the post-hoc renderers need
	// the buffered trace that -stream deliberately drops.
	if *stream && (*jsonOut != "" || *gridMap || *timeline || *flows > 0 || *narrate) {
		fatal(fmt.Errorf("-stream keeps no trace; drop -narrate/-json/-grid/-timeline/-flows (stream already prints events live)"))
	}

	topo, err := buildTopo(*topoSpec)
	if err != nil {
		fatal(err)
	}
	victims, err := buildCrashes(topo, *topoSpec, *crashSpec, *seed)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(cliffedge.DOT(topo, victims, *topoSpec))
		return
	}

	// One Cluster + Plan drives both engines; the checker and the -stream
	// narrator ride the observer stream, so -stream runs need no buffered
	// trace at all.
	opts := []cliffedge.Option{cliffedge.WithSeed(*seed), cliffedge.WithKernelShards(*shards)}
	if *live {
		opts = append(opts, cliffedge.WithEngine(cliffedge.Live()))
	}
	var online *check.Online
	if !*noCheck {
		online = check.NewOnline(topo)
		opts = append(opts, cliffedge.WithObserver(online.Observe))
	}
	if *stream {
		opts = append(opts, cliffedge.WithoutTraceBuffer(),
			cliffedge.WithObserver(func(e cliffedge.Event) { fmt.Println(e) }))
	}
	// The binary sink streams during the run (unlike -json, which renders
	// the buffered trace afterwards), so it composes with -stream.
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile, traceBuf = f, bufio.NewWriter(f)
		opts = append(opts, cliffedge.WithTraceWriter(traceBuf))
	}
	cluster, err := cliffedge.New(topo, opts...)
	if err != nil {
		fatal(err)
	}

	plan := cliffedge.NewPlan()
	for i, n := range victims {
		plan.At(*at + int64(i)**stagger).Crash(n)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := cluster.Run(ctx, plan)
	if err != nil {
		fatal(err)
	}
	if traceFile != nil {
		if err := traceBuf.Flush(); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("binary trace written to %s\n", *traceOut)
	}

	if *narrate {
		fmt.Println("--- trace ---")
		if err := res.Narrative(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteJSONL(f, res.Events()); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d events)\n", *jsonOut, len(res.Events()))
	}

	fmt.Printf("topology %s: %d nodes, %d edges; crashed %d nodes\n",
		*topoSpec, topo.Len(), topo.NumEdges(), len(victims))
	if *gridMap {
		if rows, cols, ok := gridDims(*topoSpec); ok {
			fmt.Print(viz.GridMap(rows, cols, res.Events(), res.Crashed))
		} else {
			fmt.Fprintln(os.Stderr, "cliffedge-sim: -grid requires a grid/torus topology")
		}
	}
	if *timeline {
		fmt.Print(viz.Timeline(res.Events(), 60))
	}
	if *flows > 0 {
		fmt.Print(viz.FlowSummary(res.Events(), *flows))
	}
	fmt.Printf("decisions (%d):\n", len(res.Decisions))
	for _, d := range res.Decisions {
		fmt.Printf("  %-14s view=%s value=%q\n", d.Node, d.View, d.Value)
	}
	s := res.Stats
	fmt.Printf("stats: msgs=%d bytes=%d participants=%d rounds≤%d proposals=%d rejections=%d resets=%d\n",
		s.Messages, s.Bytes, s.Participants, s.MaxRound, s.Proposals, s.Rejections, s.Resets)
	fmt.Printf("time: decided@%d quiescent@%d\n", s.DecideTime, s.EndTime)

	if online != nil {
		rep := online.Report()
		fmt.Printf("properties: %s\n", rep)
		if !rep.Ok() {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cliffedge-sim:", err)
	os.Exit(2)
}

// buildTopo parses a topology spec like "grid:12,12".
func buildTopo(spec string) (*cliffedge.Topology, error) {
	name, args, _ := strings.Cut(spec, ":")
	num := func(i int) (int, error) {
		parts := strings.Split(args, ",")
		if i >= len(parts) {
			return 0, fmt.Errorf("topology %q: missing argument %d", spec, i+1)
		}
		return strconv.Atoi(strings.TrimSpace(parts[i]))
	}
	fnum := func(i int) (float64, error) {
		parts := strings.Split(args, ",")
		if i >= len(parts) {
			return 0, fmt.Errorf("topology %q: missing argument %d", spec, i+1)
		}
		return strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
	}
	switch name {
	case "grid", "torus":
		r, err := num(0)
		if err != nil {
			return nil, err
		}
		c, err := num(1)
		if err != nil {
			return nil, err
		}
		if name == "grid" {
			return cliffedge.Grid(r, c), nil
		}
		return cliffedge.Torus(r, c), nil
	case "ring", "line", "star", "complete", "chord":
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		switch name {
		case "ring":
			return cliffedge.Ring(n), nil
		case "line":
			return cliffedge.Line(n), nil
		case "star":
			return cliffedge.Star(n), nil
		case "complete":
			return cliffedge.Complete(n), nil
		default:
			return cliffedge.Chord(n), nil
		}
	case "tree":
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		k, err := num(1)
		if err != nil {
			return nil, err
		}
		return cliffedge.Tree(n, k), nil
	case "er":
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		p, err := fnum(1)
		if err != nil {
			return nil, err
		}
		return cliffedge.ErdosRenyi(n, p, 1), nil
	case "sw":
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		k, err := num(1)
		if err != nil {
			return nil, err
		}
		b, err := fnum(2)
		if err != nil {
			return nil, err
		}
		return cliffedge.SmallWorld(n, k, b, 1), nil
	case "geo":
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		r, err := fnum(1)
		if err != nil {
			return nil, err
		}
		return cliffedge.RandomGeometric(n, r, 1), nil
	case "clustered":
		c, err := num(0)
		if err != nil {
			return nil, err
		}
		s, err := num(1)
		if err != nil {
			return nil, err
		}
		b, err := num(2)
		if err != nil {
			return nil, err
		}
		p, err := fnum(3)
		if err != nil {
			return nil, err
		}
		return cliffedge.Clustered(c, s, b, p, 1), nil
	case "fig1":
		g, _, _ := cliffedge.Fig1()
		return g, nil
	case "fig2":
		g, _ := cliffedge.Fig2()
		return g, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", spec)
	}
}

// buildCrashes parses a failure spec like "block:3" against the topology.
func buildCrashes(topo *cliffedge.Topology, topoSpec, spec string, seed int64) ([]cliffedge.NodeID, error) {
	name, args, _ := strings.Cut(spec, ":")
	switch name {
	case "block":
		k, err := strconv.Atoi(args)
		if err != nil {
			return nil, fmt.Errorf("crash %q: %w", spec, err)
		}
		tname, targs, _ := strings.Cut(topoSpec, ":")
		if tname != "grid" && tname != "torus" {
			return nil, fmt.Errorf("crash block:K requires a grid/torus topology")
		}
		dims := strings.Split(targs, ",")
		r, _ := strconv.Atoi(dims[0])
		c, _ := strconv.Atoi(dims[1])
		return cliffedge.CenterBlock(r, c, k), nil
	case "nodes":
		var out []cliffedge.NodeID
		for _, s := range strings.Split(args, ",") {
			n := cliffedge.NodeID(strings.TrimSpace(s))
			if !topo.Has(n) {
				return nil, fmt.Errorf("unknown node %q", n)
			}
			out = append(out, n)
		}
		return out, nil
	case "random":
		parts := strings.Split(args, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("crash %q: want random:COUNT,MAXSIZE", spec)
		}
		count, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		maxSize, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		seen := map[cliffedge.NodeID]bool{}
		var out []cliffedge.NodeID
		for i := 0; i < count; i++ {
			for _, n := range scenario.RandomConnectedRegion(topo, rng, 1+rng.Intn(maxSize)) {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
		return out, nil
	case "fig1":
		_, f1, f2 := graph.Fig1()
		return append(append([]cliffedge.NodeID{}, f1...), f2...), nil
	case "fig2":
		_, domains := graph.Fig2()
		var out []cliffedge.NodeID
		for _, d := range domains {
			out = append(out, d...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown crash spec %q", spec)
	}
}
