// Command cliffedge-trace converts protocol traces between the two
// on-disk formats — the binary format every streaming sink writes
// (WithTraceWriter, campaign -traces, cliffedge-sim -trace) and the
// JSON Lines form kept for debugging and interop — and summarises them.
// The input format is detected from the file's content (the binary
// format opens with the "CETR" magic), so conversion direction follows
// automatically; both directions are lossless field for field.
//
//	cliffedge-trace -in run.jsonl -out run.bin     # JSONL → binary
//	cliffedge-trace -in run.bin -out run.jsonl     # binary → JSONL
//	cliffedge-trace -in run.bin                    # print summary stats
//	cliffedge-trace -in run.bin -out -             # JSONL to stdout
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"cliffedge/internal/trace"
)

func main() {
	var (
		in  = flag.String("in", "", "input trace file (binary or JSONL, detected from content)")
		out = flag.String("out", "", "output file (- for stdout); format is the opposite of the input's unless -to overrides; empty: print a summary instead")
		to  = flag.String("to", "", "force the output format: binary or jsonl")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	events, binaryIn, err := readTrace(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *in, err))
	}

	if *out == "" {
		s := trace.Summarize(events)
		format := "jsonl"
		if binaryIn {
			format = "binary"
		}
		fmt.Printf("%s: %s format, %d events\n", *in, format, len(events))
		fmt.Printf("msgs=%d deliveries=%d drops=%d bytes=%d crashes=%d detections=%d\n",
			s.Messages, s.Deliveries, s.Drops, s.Bytes, s.Crashes, s.Detections)
		fmt.Printf("proposals=%d rejections=%d resets=%d decisions=%d participants=%d\n",
			s.Proposals, s.Rejections, s.Resets, s.Decisions, s.Participants)
		fmt.Printf("max_round=%d decided@%d quiescent@%d\n", s.MaxRound, s.DecideTime, s.EndTime)
		return
	}

	binaryOut := !binaryIn
	switch *to {
	case "":
	case "binary":
		binaryOut = true
	case "jsonl":
		binaryOut = false
	default:
		fatal(fmt.Errorf("unknown -to format %q (want binary or jsonl)", *to))
	}

	var w io.Writer = os.Stdout
	var file *os.File
	if *out != "-" {
		file, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = file
	}
	buf := bufio.NewWriter(w)
	if binaryOut {
		err = trace.WriteBinary(buf, events)
	} else {
		err = trace.WriteJSONL(buf, events)
	}
	if err == nil {
		err = buf.Flush()
	}
	if file != nil {
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatal(err)
	}
	if *out != "-" {
		format := "jsonl"
		if binaryOut {
			format = "binary"
		}
		fmt.Printf("%s: %d events written (%s)\n", *out, len(events), format)
	}
}

// readTrace sniffs the input's format from its leading bytes — the
// binary header opens with the "CETR" magic, JSONL with '{' — and
// decodes the whole trace. Inputs too short to carry the magic (0–3
// bytes) are an error, not an empty trace: every valid input is at
// least the 8-byte binary header (which alone decodes as zero events)
// or one JSONL event line, so a shorter file is truncated or not a
// trace at all — silently reporting "0 events" would hide exactly the
// truncation a summary run exists to catch.
func readTrace(r io.Reader) ([]trace.Event, bool, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, false, err
	}
	if len(head) < 4 {
		return nil, false, fmt.Errorf("input is %d bytes — too short to be a trace in either format (an empty binary trace is the 8-byte header)", len(head))
	}
	if bytes.Equal(head, []byte("CETR")) {
		events, err := trace.ReadBinary(br)
		return events, true, err
	}
	events, err := trace.ReadJSONL(br)
	return events, false, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cliffedge-trace:", err)
	os.Exit(1)
}
