package main

import (
	"bytes"
	"strings"
	"testing"

	"cliffedge/internal/trace"
)

// TestReadTraceRejectsShortInput: a 0–3-byte input cannot be a trace in
// either format, so readTrace must error instead of decoding it as an
// empty JSONL trace (the old behaviour, which made truncated files
// summarise as clean "0 events" runs).
func TestReadTraceRejectsShortInput(t *testing.T) {
	for _, in := range []string{"", "C", "CE", "{}\n"} {
		_, _, err := readTrace(strings.NewReader(in))
		if err == nil {
			t.Errorf("%q (%d bytes): decoded without error, want short-input rejection", in, len(in))
		} else if !strings.Contains(err.Error(), "too short") {
			t.Errorf("%q: unexpected error: %v", in, err)
		}
	}
}

// TestReadTraceEmptyBinary: the 8-byte binary header alone is a valid
// trace of zero events — the short-input guard must not reject it.
func TestReadTraceEmptyBinary(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8 {
		t.Fatalf("empty binary trace is %d bytes, want the 8-byte header", buf.Len())
	}
	events, binary, err := readTrace(&buf)
	if err != nil {
		t.Fatalf("empty binary trace rejected: %v", err)
	}
	if !binary {
		t.Error("empty binary trace not detected as binary")
	}
	if len(events) != 0 {
		t.Errorf("empty binary trace decoded as %d events", len(events))
	}
}

// TestReadTraceRoundTrip: both formats decode to the same events through
// the sniffing reader.
func TestReadTraceRoundTrip(t *testing.T) {
	events := []trace.Event{
		{Seq: 0, Time: 1, Kind: trace.KindSend, Node: "a", Peer: "b", Bytes: 10},
		{Seq: 1, Time: 3, Kind: trace.KindDeliver, Node: "b", Peer: "a", Bytes: 10},
	}
	var bin, jsonl bytes.Buffer
	if err := trace.WriteBinary(&bin, events); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(&jsonl, events); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		buf    *bytes.Buffer
		binary bool
	}{{"binary", &bin, true}, {"jsonl", &jsonl, false}} {
		got, isBin, err := readTrace(tc.buf)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if isBin != tc.binary {
			t.Errorf("%s: format detected as binary=%v", tc.name, isBin)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: %d events, want %d", tc.name, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Errorf("%s: event %d = %+v, want %+v", tc.name, i, got[i], events[i])
			}
		}
	}
}
