// Command cliffedged serves campaigns over HTTP: clients POST a campaign
// spec, follow per-run progress over SSE, and fetch the final report as
// JSON or CSV. All campaigns share one fair-share worker pool — a small
// sweep submitted behind a large one starts immediately and both advance
// at the same per-campaign rate — with a per-client cap on concurrently
// active campaigns.
//
// Every completed run is committed to an append-only store before the
// next begins, so the daemon can be killed (even -9) at any moment: on
// restart it replays the logs, resumes every interrupted sweep where it
// left off, and the eventual reports are byte-identical to uninterrupted
// ones. The same store directory is shared with cliffedge-campaign
// -store/-resume.
//
//	cliffedged -addr :8080 -store ./data -workers 8
//
//	curl -X POST localhost:8080/api/v1/campaigns -d '{
//	    "topologies": ["grid", "ring"], "regimes": ["quiescent"],
//	    "engines": ["sim"], "seed_start": 1, "seeds": 64, "repeats": 1}'
//	curl -N localhost:8080/api/v1/campaigns/c000001/events   # SSE stream
//	curl    localhost:8080/api/v1/campaigns/c000001/report.csv
//	curl -X DELETE localhost:8080/api/v1/campaigns/c000001   # cancel
//
// With -coordinator the daemon becomes a fleet coordinator instead: it
// runs no campaigns itself, but shards submitted specs across a pool of
// ordinary cliffedged workers (given to -workers as comma-separated base
// URLs), merges their result streams, and re-leases the shards of lost
// workers to the survivors. The merged report is byte-identical to a
// single-box run of the same spec, and a coordinator killed mid-fleet
// resumes from its store exactly like a worker does.
//
//	cliffedged -coordinator -addr :8090 -store ./fleet-data \
//	    -workers http://n1:8080,http://n2:8080,http://n3:8080
//
//	curl -X POST localhost:8090/api/v1/fleets -d '{
//	    "topologies": ["ring"], "regimes": ["quiescent"],
//	    "engines": ["sim"], "seed_start": 1, "seeds": 600, "repeats": 1}'
//	curl -N localhost:8090/api/v1/fleets/f000001/events      # merged SSE
//	curl    localhost:8090/api/v1/fleets/f000001/report.json
//
// Observability: both modes expose GET /metrics (Prometheus text format)
// and a JSON /healthz on the main listener; -debug-addr opens a second,
// private listener with net/http/pprof and a /metrics mirror. -log-level
// and -log-format control the structured (log/slog) operational log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cliffedge"
	"cliffedge/internal/fleet"
	"cliffedge/internal/obs"
	"cliffedge/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		storeDir    = flag.String("store", "cliffedged-data", "campaign store directory (created if absent)")
		workers     = flag.String("workers", "", "worker mode: shared worker-pool size (empty or 0 = GOMAXPROCS); coordinator mode: comma-separated worker base URLs")
		maxClient   = flag.Int("max-client", 4, "max concurrently active campaigns per client (worker mode)")
		liveTick    = flag.Duration("live-tick", 0, "realise network-model delays of live-engine runs in wall time, this long per tick (0 = off; worker mode)")
		traces      = flag.Bool("traces", false, "persist every run's full binary trace under <store>/<id>/traces (convert with cliffedge-trace; worker mode)")
		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator sharding campaigns across the -workers URLs")
		shards      = flag.Int("shards", 0, "coordinator: shards per fleet (0 = 4×workers, capped at the seed count)")
		perWorker   = flag.Int("per-worker", 2, "coordinator: max concurrently leased shards per worker")
		workerLoss  = flag.Duration("worker-timeout", 15*time.Second, "coordinator: re-lease a worker's shards after contact failures persist this long")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		debugAddr   = flag.String("debug-addr", "", "private debug listener with net/http/pprof and /metrics (empty = off)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cliffedged:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	startDebug(logger, *debugAddr)

	if *coordinator {
		runCoordinator(logger, *addr, *storeDir, *workers, *shards, *perWorker, *workerLoss)
		return
	}

	pool := 0
	if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil {
			fatal(logger, "-workers must be a pool size in worker mode (worker URLs need -coordinator)", "err", err)
		}
		pool = n
	}
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	var copts []cliffedge.Option
	if *liveTick > 0 {
		copts = append(copts, cliffedge.WithLiveTick(*liveTick))
	}

	srv, err := serve.NewServer(*storeDir, serve.Config{
		Workers:        pool,
		MaxPerClient:   *maxClient,
		ClusterOptions: copts,
		PersistTraces:  *traces,
		Logger:         logger.With("component", "serve"),
	})
	if err != nil {
		fatal(logger, "cannot start server", "err", err)
	}
	logger.Info("listening", "addr", *addr, "store", *storeDir, "workers", pool)
	serveHTTP(logger, *addr, srv.Handler(), srv.Shutdown)
}

// fatal logs at error level and exits non-zero — the slog analogue of
// log.Fatal.
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// startDebug opens the opt-in private listener: the standard pprof
// endpoints plus a /metrics mirror, so profiling and scraping never have
// to ride the public API listener.
func startDebug(logger *slog.Logger, addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", obs.Handler())
	go func() {
		logger.Info("debug listener", "addr", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			logger.Error("debug listener failed", "err", err)
		}
	}()
}

// runCoordinator is the -coordinator main: shard fleets across the worker
// URLs, mirror the campaign API under /api/v1/fleets.
func runCoordinator(logger *slog.Logger, addr, storeDir, workerList string, shards, perWorker int, workerTimeout time.Duration) {
	var urls []string
	for _, u := range strings.Split(workerList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fatal(logger, "-coordinator needs -workers with at least one worker base URL")
	}
	co, err := fleet.NewCoordinator(storeDir, fleet.Config{
		Workers:       urls,
		Shards:        shards,
		PerWorker:     perWorker,
		WorkerTimeout: workerTimeout,
		Logger:        logger.With("component", "fleet"),
	})
	if err != nil {
		fatal(logger, "cannot start coordinator", "err", err)
	}
	logger.Info("coordinating", "workers", len(urls), "addr", addr, "store", storeDir)
	serveHTTP(logger, addr, fleet.NewServer(co).Handler(), co.Shutdown)
}

// serveHTTP runs the HTTP server until SIGINT/SIGTERM, then stops
// accepting requests and shuts the core down. In-flight work aborts and
// unfinished sweeps/fleets keep their "running" manifests, so the next
// start resumes them.
func serveHTTP(logger *slog.Logger, addr string, handler http.Handler, shutdown func()) {
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("shutting down")
	case err := <-errCh:
		logger.Error("http server failed", "err", err)
		shutdown()
		os.Exit(1)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown failed", "err", err)
	}
	shutdown()
	logger.Info("stopped")
}
