// Command cliffedged serves campaigns over HTTP: clients POST a campaign
// spec, follow per-run progress over SSE, and fetch the final report as
// JSON or CSV. All campaigns share one fair-share worker pool — a small
// sweep submitted behind a large one starts immediately and both advance
// at the same per-campaign rate — with a per-client cap on concurrently
// active campaigns.
//
// Every completed run is committed to an append-only store before the
// next begins, so the daemon can be killed (even -9) at any moment: on
// restart it replays the logs, resumes every interrupted sweep where it
// left off, and the eventual reports are byte-identical to uninterrupted
// ones. The same store directory is shared with cliffedge-campaign
// -store/-resume.
//
//	cliffedged -addr :8080 -store ./data -workers 8
//
//	curl -X POST localhost:8080/api/v1/campaigns -d '{
//	    "topologies": ["grid", "ring"], "regimes": ["quiescent"],
//	    "engines": ["sim"], "seed_start": 1, "seeds": 64, "repeats": 1}'
//	curl -N localhost:8080/api/v1/campaigns/c000001/events   # SSE stream
//	curl    localhost:8080/api/v1/campaigns/c000001/report.csv
//	curl -X DELETE localhost:8080/api/v1/campaigns/c000001   # cancel
//
// With -coordinator the daemon becomes a fleet coordinator instead: it
// runs no campaigns itself, but shards submitted specs across a pool of
// ordinary cliffedged workers (given to -workers as comma-separated base
// URLs), merges their result streams, and re-leases the shards of lost
// workers to the survivors. The merged report is byte-identical to a
// single-box run of the same spec, and a coordinator killed mid-fleet
// resumes from its store exactly like a worker does.
//
//	cliffedged -coordinator -addr :8090 -store ./fleet-data \
//	    -workers http://n1:8080,http://n2:8080,http://n3:8080
//
//	curl -X POST localhost:8090/api/v1/fleets -d '{
//	    "topologies": ["ring"], "regimes": ["quiescent"],
//	    "engines": ["sim"], "seed_start": 1, "seeds": 600, "repeats": 1}'
//	curl -N localhost:8090/api/v1/fleets/f000001/events      # merged SSE
//	curl    localhost:8090/api/v1/fleets/f000001/report.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cliffedge"
	"cliffedge/internal/fleet"
	"cliffedge/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		storeDir    = flag.String("store", "cliffedged-data", "campaign store directory (created if absent)")
		workers     = flag.String("workers", "", "worker mode: shared worker-pool size (empty or 0 = GOMAXPROCS); coordinator mode: comma-separated worker base URLs")
		maxClient   = flag.Int("max-client", 4, "max concurrently active campaigns per client (worker mode)")
		liveTick    = flag.Duration("live-tick", 0, "realise network-model delays of live-engine runs in wall time, this long per tick (0 = off; worker mode)")
		traces      = flag.Bool("traces", false, "persist every run's full binary trace under <store>/<id>/traces (convert with cliffedge-trace; worker mode)")
		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator sharding campaigns across the -workers URLs")
		shards      = flag.Int("shards", 0, "coordinator: shards per fleet (0 = 4×workers, capped at the seed count)")
		perWorker   = flag.Int("per-worker", 2, "coordinator: max concurrently leased shards per worker")
		workerLoss  = flag.Duration("worker-timeout", 15*time.Second, "coordinator: re-lease a worker's shards after contact failures persist this long")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "cliffedged: ", log.LstdFlags)
	if *coordinator {
		runCoordinator(logger, *addr, *storeDir, *workers, *shards, *perWorker, *workerLoss)
		return
	}

	pool := 0
	if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil {
			logger.Fatalf("-workers must be a pool size in worker mode (worker URLs need -coordinator): %v", err)
		}
		pool = n
	}
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	var copts []cliffedge.Option
	if *liveTick > 0 {
		copts = append(copts, cliffedge.WithLiveTick(*liveTick))
	}

	srv, err := serve.NewServer(*storeDir, serve.Config{
		Workers:        pool,
		MaxPerClient:   *maxClient,
		ClusterOptions: copts,
		PersistTraces:  *traces,
		Logf:           logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s, store %s, %d workers", *addr, *storeDir, pool)
	serveHTTP(logger, *addr, srv.Handler(), srv.Shutdown)
}

// runCoordinator is the -coordinator main: shard fleets across the worker
// URLs, mirror the campaign API under /api/v1/fleets.
func runCoordinator(logger *log.Logger, addr, storeDir, workerList string, shards, perWorker int, workerTimeout time.Duration) {
	var urls []string
	for _, u := range strings.Split(workerList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		logger.Fatal("-coordinator needs -workers with at least one worker base URL")
	}
	co, err := fleet.NewCoordinator(storeDir, fleet.Config{
		Workers:       urls,
		Shards:        shards,
		PerWorker:     perWorker,
		WorkerTimeout: workerTimeout,
		Logf:          logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("coordinating %d workers on %s, store %s", len(urls), addr, storeDir)
	serveHTTP(logger, addr, fleet.NewServer(co).Handler(), co.Shutdown)
}

// serveHTTP runs the HTTP server until SIGINT/SIGTERM, then stops
// accepting requests and shuts the core down. In-flight work aborts and
// unfinished sweeps/fleets keep their "running" manifests, so the next
// start resumes them.
func serveHTTP(logger *log.Logger, addr string, handler http.Handler, shutdown func()) {
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
	case err := <-errCh:
		logger.Printf("http server: %v", err)
		shutdown()
		os.Exit(1)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	shutdown()
	fmt.Fprintln(os.Stderr, "cliffedged: stopped")
}
