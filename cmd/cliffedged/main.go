// Command cliffedged serves campaigns over HTTP: clients POST a campaign
// spec, follow per-run progress over SSE, and fetch the final report as
// JSON or CSV. All campaigns share one fair-share worker pool — a small
// sweep submitted behind a large one starts immediately and both advance
// at the same per-campaign rate — with a per-client cap on concurrently
// active campaigns.
//
// Every completed run is committed to an append-only store before the
// next begins, so the daemon can be killed (even -9) at any moment: on
// restart it replays the logs, resumes every interrupted sweep where it
// left off, and the eventual reports are byte-identical to uninterrupted
// ones. The same store directory is shared with cliffedge-campaign
// -store/-resume.
//
//	cliffedged -addr :8080 -store ./data -workers 8
//
//	curl -X POST localhost:8080/api/v1/campaigns -d '{
//	    "topologies": ["grid", "ring"], "regimes": ["quiescent"],
//	    "engines": ["sim"], "seed_start": 1, "seeds": 64, "repeats": 1}'
//	curl -N localhost:8080/api/v1/campaigns/c000001/events   # SSE stream
//	curl    localhost:8080/api/v1/campaigns/c000001/report.csv
//	curl -X DELETE localhost:8080/api/v1/campaigns/c000001   # cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cliffedge"
	"cliffedge/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		storeDir  = flag.String("store", "cliffedged-data", "campaign store directory (created if absent)")
		workers   = flag.Int("workers", 0, "shared worker-pool size (0 = GOMAXPROCS)")
		maxClient = flag.Int("max-client", 4, "max concurrently active campaigns per client")
		liveTick  = flag.Duration("live-tick", 0, "realise network-model delays of live-engine runs in wall time, this long per tick (0 = off)")
		traces    = flag.Bool("traces", false, "persist every run's full binary trace under <store>/<id>/traces (convert with cliffedge-trace)")
	)
	flag.Parse()

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	var copts []cliffedge.Option
	if *liveTick > 0 {
		copts = append(copts, cliffedge.WithLiveTick(*liveTick))
	}

	logger := log.New(os.Stderr, "cliffedged: ", log.LstdFlags)
	srv, err := serve.NewServer(*storeDir, serve.Config{
		Workers:        *workers,
		MaxPerClient:   *maxClient,
		ClusterOptions: copts,
		PersistTraces:  *traces,
		Logf:           logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s, store %s, %d workers", *addr, *storeDir, *workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
	case err := <-errCh:
		logger.Printf("http server: %v", err)
		srv.Shutdown()
		os.Exit(1)
	}

	// Stop accepting requests, then stop the scheduler: in-flight runs
	// abort and unfinished sweeps keep their "running" manifests, so the
	// next start resumes them.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	srv.Shutdown()
	fmt.Fprintln(os.Stderr, "cliffedged: stopped")
}
