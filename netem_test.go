package cliffedge

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// This file covers the public network-conditions surface: WithNetModel,
// Plan.FlapLink/Plan.Degrade, Result.Net, the checker's automatic
// safety-only downgrade under raw loss, and the cross-engine determinism
// contract (same seed + same profile ⇒ bit-identical simulator traces
// across runs and GOMAXPROCS; identical quiescent-regime decisions on the
// live engine).

func netemTestModel(mode NetMode) *NetModel {
	return &NetModel{
		Mode: mode,
		Default: NetProfile{
			Loss: 0.2, JitterMax: 15, SpikeProb: 0.05, SpikeMin: 40, SpikeMax: 120,
		},
	}
}

func netemRun(t *testing.T, opts []Option, plan *Plan) *Result {
	t.Helper()
	topo := Grid(6, 6)
	c, err := New(topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func blockPlan() *Plan {
	return NewPlan().At(10).Crash(CenterBlock(6, 6, 2)...)
}

// TestNetModelSimDeterministicTrace: the paper-facing determinism
// guarantee at the API level, for both modes, across GOMAXPROCS.
func TestNetModelSimDeterministicTrace(t *testing.T) {
	for _, mode := range []NetMode{NetRetransmit, NetRawLoss} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			render := func() string {
				res := netemRun(t, []Option{WithSeed(11), WithNetModel(netemTestModel(mode))}, blockPlan())
				var sb strings.Builder
				for _, e := range res.Events() {
					fmt.Fprintln(&sb, e)
				}
				fmt.Fprintf(&sb, "net=%+v\n", *res.Net)
				return sb.String()
			}
			want := render()
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, procs := range []int{1, 4, prev} {
				runtime.GOMAXPROCS(procs)
				if got := render(); got != want {
					t.Fatalf("GOMAXPROCS=%d: trace or counters diverged", procs)
				}
			}
		})
	}
}

// TestNetModelLiveQuiescentDecisions: on the live engine, a quiescent
// single-wave plan under retransmission-mode degradation must reproduce
// its decisions across repeated runs (the interleaving-independent
// regime) and match the simulator's decisions for the same workload.
func TestNetModelLiveQuiescentDecisions(t *testing.T) {
	model := netemTestModel(NetRetransmit)
	decide := func(engine Engine) string {
		res := netemRun(t, []Option{
			WithSeed(4), WithNetModel(model), WithChecker(),
			WithEngine(engine), WithLiveTimeout(time.Minute),
		}, blockPlan())
		var sb strings.Builder
		for _, d := range res.Decisions {
			fmt.Fprintf(&sb, "%s→{%s}=%s;", d.Node, d.View.Key(), d.Value)
		}
		return sb.String()
	}
	want := decide(Sim())
	if want == "" {
		t.Fatal("sim decided nothing")
	}
	for i := 0; i < 3; i++ {
		if got := decide(Live()); got != want {
			t.Fatalf("live run %d diverged:\nsim:  %s\nlive: %s", i, want, got)
		}
	}
}

// TestNetModelCheckerDowngrade: a checked cluster accepts raw-loss runs —
// stalls and duplicates are judged by the safety subset only — while a
// genuine violation would still surface (covered in internal/check).
func TestNetModelCheckerDowngrade(t *testing.T) {
	model := &NetModel{
		Mode:    NetRawLoss,
		Default: NetProfile{Loss: 0.25, DupProb: 0.2},
	}
	res := netemRun(t, []Option{WithSeed(2), WithNetModel(model), WithChecker()}, blockPlan())
	if res.Net == nil || res.Net.Dropped == 0 {
		t.Fatalf("raw loss dropped nothing: %+v", res.Net)
	}
	if res.Net.Duplicates == 0 {
		t.Fatalf("dup 0.2 duplicated nothing: %+v", res.Net)
	}
}

// TestPlanFlapLink: a flapped link drops everything inside its outage
// window in raw-loss mode, and a run without any model attached carries
// no Net stats.
func TestPlanFlapLink(t *testing.T) {
	res := netemRun(t, []Option{WithSeed(1)}, blockPlan())
	if res.Net != nil {
		t.Fatalf("unconditioned run has Net stats: %+v", res.Net)
	}

	// Flap the link between two adjacent survivors for the whole
	// convergence window; raw-loss mode so drops are observable.
	a, b := GridID(0, 0), GridID(0, 1)
	model := &NetModel{Mode: NetRawLoss}
	plan := blockPlan().At(0).FlapLink(a, b, 1<<40)
	res = netemRun(t, []Option{WithSeed(1), WithNetModel(model)}, plan)
	if res.Net == nil {
		t.Fatal("flapped run has no Net stats")
	}
	for _, e := range res.Events() {
		if e.Kind == EventDeliver &&
			((e.Node == a && e.Peer == b) || (e.Node == b && e.Peer == a)) {
			t.Fatalf("delivery across a downed link: %s", e)
		}
	}
}

// TestPlanDegrade: a zone degradation clause imposes its profile on links
// touching the zone from the cursor time on — observable as retransmit
// counters attributable to the zone — and validates its nodes.
func TestPlanDegrade(t *testing.T) {
	// Nodes on the crashed block's border — CD3 locality means only the
	// domain ∪ border cone carries traffic, so degrading anywhere else
	// would be unobservable.
	zone := []NodeID{GridID(1, 2), GridID(2, 1)}
	plan := blockPlan().At(0).Degrade(NetProfile{Loss: 0.9}, zone...)
	res := netemRun(t, []Option{WithSeed(6)}, plan)
	if res.Net == nil || res.Net.Retransmits == 0 {
		t.Fatalf("degraded zone produced no retransmissions: %+v", res.Net)
	}

	topo := Grid(6, 6)
	c, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	bad := NewPlan().At(0).Degrade(NetProfile{Loss: 0.5}, "ghost")
	if _, err := c.Run(context.Background(), bad); err == nil {
		t.Fatal("unknown node in Degrade accepted")
	}
	invalid := NewPlan().At(0).Degrade(NetProfile{Loss: 2})
	if _, err := c.Run(context.Background(), invalid); err == nil {
		t.Fatal("malformed profile accepted")
	}
	onEvent := NewPlan().OnEvent(func(Event) bool { return true }, 1).
		FlapLink(GridID(0, 0), GridID(0, 1), 10)
	if _, err := c.Run(context.Background(), onEvent); err == nil {
		t.Fatal("netem clause under OnEvent cursor accepted")
	}
}

// TestWithNetModelValidation: nil models are rejected at construction,
// malformed models at run time (binding).
func TestWithNetModelValidation(t *testing.T) {
	if _, err := New(Grid(3, 3), WithNetModel(nil)); err == nil {
		t.Fatal("nil NetModel accepted")
	}
	bad := &NetModel{Default: NetProfile{Loss: -1}}
	c, err := New(Grid(3, 3), WithNetModel(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), nil); err == nil {
		t.Fatal("malformed NetModel bound successfully")
	}
}
