#!/usr/bin/env bash
# serve-smoke: end-to-end crash-recovery smoke test of cliffedged.
#
# Starts the daemon, submits a sweep over HTTP, follows the SSE stream
# until several runs have committed, SIGKILLs the process mid-sweep,
# restarts it on the same store, and verifies that the sweep resumes
# cleanly and completes with a full, violation-free report.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18436
BASE="http://$ADDR"
DEBUG=127.0.0.1:18437
DATA=$(mktemp -d)
LOG1=$(mktemp)
LOG2=$(mktemp)
BIN=$(mktemp -d)/cliffedged
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$DATA" "$LOG1" "$LOG2" "$(dirname "$BIN")"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/cliffedged

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "serve-smoke: server never became healthy" >&2
    return 1
}

"$BIN" -addr "$ADDR" -store "$DATA" -workers 2 -debug-addr "$DEBUG" >"$LOG1" 2>&1 &
PID=$!
wait_healthy

ID=$(curl -fsS -X POST "$BASE/api/v1/campaigns" -H 'X-Client-ID: smoke' -d '{
  "topologies": ["ring"], "regimes": ["quiescent"], "engines": ["sim"],
  "seed_start": 1, "seeds": 1000, "repeats": 1}' |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "serve-smoke: submitted $ID (1000 runs)"

# Follow the SSE stream until five results have arrived, proving runs are
# committing, then kill the daemon without ceremony. (Closing the stream
# early kills curl with SIGPIPE — expected, hence the || true.)
SEEN=$(timeout 60 curl -fsS -N "$BASE/api/v1/campaigns/$ID/events" 2>/dev/null |
    grep --line-buffered '^data: ' | head -n 5 || true)
if [ "$(printf '%s\n' "$SEEN" | wc -l)" -lt 5 ]; then
    echo "serve-smoke: saw fewer than 5 SSE results before interrupting" >&2
    exit 1
fi
# Mid-sweep, the metrics endpoint must already show committed work on a
# fresh store (no torn-tail recoveries), and the pprof side listener must
# answer.
curl -fsS "$BASE/metrics" | python3 -c '
import sys
samples = {}
for line in sys.stdin:
    if line.startswith("#") or not line.strip():
        continue
    name, _, value = line.rpartition(" ")
    samples[name] = float(value)
assert samples.get("cliffedge_serve_jobs_committed_total", 0) > 0, \
    "no jobs committed: %r" % samples.get("cliffedge_serve_jobs_committed_total")
assert samples.get("cliffedge_sim_runs_total", 0) > 0, \
    "no sim runs counted: %r" % samples.get("cliffedge_sim_runs_total")
assert samples.get("cliffedge_store_appends_total", 0) > 0, \
    "no store appends counted: %r" % samples.get("cliffedge_store_appends_total")
assert samples.get("cliffedge_store_recoveries_total") == 0, \
    "fresh store reported recoveries: %r" % samples.get("cliffedge_store_recoveries_total")
print("serve-smoke: /metrics live mid-sweep: %d jobs committed, 0 recoveries"
      % samples["cliffedge_serve_jobs_committed_total"])
'
curl -fsS "http://$DEBUG/debug/pprof/" >/dev/null
curl -fsS "http://$DEBUG/metrics" | grep -q '^cliffedge_serve_jobs_committed_total '
echo "serve-smoke: pprof and metrics answering on -debug-addr"

kill -9 "$PID"
wait "$PID" 2>/dev/null || true
echo "serve-smoke: SIGKILLed mid-sweep"

"$BIN" -addr "$ADDR" -store "$DATA" -workers 2 >"$LOG2" 2>&1 &
PID=$!
wait_healthy
grep "resumed campaign" "$LOG2" | grep -q "campaign=$ID" || {
    echo "serve-smoke: restart did not resume $ID" >&2
    cat "$LOG2" >&2
    exit 1
}
echo "serve-smoke: restart resumed $ID"

# Follow the resumed stream to the terminal event; it must be "done".
TERMINAL=$(timeout 300 curl -fsS -N "$BASE/api/v1/campaigns/$ID/events" 2>/dev/null |
    grep --line-buffered -m1 '^event: \(done\|cancelled\)$' || true)
if [ "$TERMINAL" != "event: done" ]; then
    echo "serve-smoke: stream ended with '$TERMINAL', want 'event: done'" >&2
    exit 1
fi
echo "serve-smoke: sweep completed after resume"

curl -fsS "$BASE/api/v1/campaigns/$ID/report.json" | python3 -c '
import json, sys
totals = json.load(sys.stdin)["totals"]
assert totals["runs"] == 1000, "runs %r != 1000" % totals["runs"]
assert totals["violations"] == 0, "violations %r" % totals["violations"]
assert totals["errors"] == 0, "errors %r" % totals["errors"]
print("serve-smoke: report complete:", totals)
'
curl -fsS "$BASE/api/v1/campaigns/$ID/report.csv" | head -n 1 | grep -q '^topology,regime,engine'
echo "serve-smoke: OK"
