#!/usr/bin/env bash
# fleet-smoke: end-to-end fault-tolerance smoke test of the fleet
# coordinator.
#
# Builds a single-box reference report, starts three cliffedged workers
# and one coordinator, submits a fleet, follows the merged SSE stream
# until several runs have committed, SIGKILLs one worker mid-shard, and
# verifies that the sweep still completes — the orphaned shards re-leased
# to the survivors — with a merged report byte-identical to the single-box
# reference.
set -euo pipefail
cd "$(dirname "$0")/.."

CADDR=127.0.0.1:18450
CBASE="http://$CADDR"
WADDRS=(127.0.0.1:18451 127.0.0.1:18452 127.0.0.1:18453)
WORK=$(mktemp -d)
BIN="$WORK/cliffedged"
CAMPAIGN="$WORK/cliffedge-campaign"
REF="$WORK/reference.json"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/cliffedged
go build -o "$CAMPAIGN" ./cmd/cliffedge-campaign

SPEC='{"topologies": ["ring"], "regimes": ["quiescent"], "engines": ["sim"],
       "seed_start": 1, "seeds": 30000, "repeats": 1}'

# Single-box reference: same spec, one process, no sharding.
"$CAMPAIGN" -topos ring -regimes quiescent -engines sim \
    -seed-start 1 -seeds 30000 -repeats 1 -quiet -json "$REF"
echo "fleet-smoke: single-box reference built ($(wc -c <"$REF") bytes)"

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "fleet-smoke: $1 never became healthy" >&2
    return 1
}

WURLS=""
for i in 0 1 2; do
    "$BIN" -addr "${WADDRS[$i]}" -store "$WORK/worker$i" -workers 2 -max-client 64 \
        >"$WORK/worker$i.log" 2>&1 &
    PIDS+=($!)
    WURLS="$WURLS,http://${WADDRS[$i]}"
done
WURLS=${WURLS#,}
for i in 0 1 2; do wait_healthy "http://${WADDRS[$i]}"; done
echo "fleet-smoke: 3 workers up"

"$BIN" -coordinator -addr "$CADDR" -store "$WORK/coord" \
    -workers "$WURLS" -shards 12 -worker-timeout 5s \
    >"$WORK/coord.log" 2>&1 &
PIDS+=($!)
wait_healthy "$CBASE"

ID=$(curl -fsS -X POST "$CBASE/api/v1/fleets" -H 'X-Client-ID: smoke' -d "$SPEC" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "fleet-smoke: submitted $ID (30000 runs, 12 shards)"

# Follow the merged SSE stream until five results have committed, proving
# the incremental merge is flowing, then SIGKILL worker 1 mid-shard.
# (Closing the stream early kills curl with SIGPIPE — expected.)
SEEN=$(timeout 120 curl -fsS -N "$CBASE/api/v1/fleets/$ID/events" 2>/dev/null |
    grep --line-buffered '^data: ' | head -n 5 || true)
if [ "$(printf '%s\n' "$SEEN" | wc -l)" -lt 5 ]; then
    echo "fleet-smoke: saw fewer than 5 merged SSE results" >&2
    cat "$WORK/coord.log" >&2
    exit 1
fi
kill -9 "${PIDS[1]}"
wait "${PIDS[1]}" 2>/dev/null || true
echo "fleet-smoke: SIGKILLed worker 1 mid-shard"

# Follow the stream to the terminal event; the fleet must still complete,
# its orphaned shards re-leased to the surviving workers.
TERMINAL=$(timeout 300 curl -fsS -N "$CBASE/api/v1/fleets/$ID/events" 2>/dev/null |
    grep --line-buffered -m1 '^event: \(done\|cancelled\)$' || true)
if [ "$TERMINAL" != "event: done" ]; then
    echo "fleet-smoke: stream ended with '$TERMINAL', want 'event: done'" >&2
    cat "$WORK/coord.log" >&2
    exit 1
fi
grep -q 're-leasing' "$WORK/coord.log" || {
    echo "fleet-smoke: coordinator never re-leased a shard after the kill" >&2
    cat "$WORK/coord.log" >&2
    exit 1
}
echo "fleet-smoke: fleet completed via reassignment"

# The merged report must be byte-identical to the single-box reference.
curl -fsS "$CBASE/api/v1/fleets/$ID/report.json" >"$WORK/fleet.json"
cmp "$REF" "$WORK/fleet.json" || {
    echo "fleet-smoke: merged report differs from single-box reference" >&2
    exit 1
}
echo "fleet-smoke: merged report byte-identical to single-box reference"

# The coordinator's metrics must account for the whole fleet: every run
# merged exactly once, the kill visible as re-lease traffic, and the
# re-run shards' overlap absorbed as dedups rather than double commits.
curl -fsS "$CBASE/metrics" | python3 -c '
import sys
samples = {}
for line in sys.stdin:
    if line.startswith("#") or not line.strip():
        continue
    name, _, value = line.rpartition(" ")
    samples[name] = float(value)
assert samples.get("cliffedge_fleet_records_merged_total", 0) == 30000, \
    "records merged %r != 30000" % samples.get("cliffedge_fleet_records_merged_total")
assert samples.get("cliffedge_fleet_shard_leases_total", 0) >= 12, \
    "leases %r < 12 shards" % samples.get("cliffedge_fleet_shard_leases_total")
assert samples.get("cliffedge_fleet_shard_reassignments_total", 0) > 0, \
    "kill produced no re-lease in metrics"
assert samples.get("cliffedge_store_recoveries_total") == 0, \
    "coordinator store reported recoveries: %r" % samples.get("cliffedge_store_recoveries_total")
print("fleet-smoke: coordinator /metrics: %d records merged, %d dedup, %d re-leases"
      % (samples["cliffedge_fleet_records_merged_total"],
         samples.get("cliffedge_fleet_records_deduped_total", 0),
         samples["cliffedge_fleet_shard_reassignments_total"]))
'

curl -fsS "$CBASE/api/v1/fleets/$ID" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["status"] == "done", doc["status"]
assert doc["completed"] == doc["total"] == 30000, (doc["completed"], doc["total"])
attempts = sum(s.get("attempt", 0) for s in doc["shards"])
assert attempts > 0, "no shard was ever re-leased"
print("fleet-smoke: status done, %d/%d runs, %d re-lease attempts"
      % (doc["completed"], doc["total"], attempts))
'
echo "fleet-smoke: OK"
